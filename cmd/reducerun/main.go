// Command reducerun runs the inline data reduction pipeline over a workload
// (a file, or a generated stream) on the simulated paper platform and
// prints the run report.
//
// Usage:
//
//	reducerun [-mode cpu-only|gpu-dedup|gpu-compress|gpu-both|auto]
//	          [-in FILE | -mb N -dedup R -comp R] [-chunk N]
//	          [-no-dedup] [-no-compress] [-destage] [-seed N]
//	          [-faults SEED:RATE] [-json] [-trace-out FILE]
//	          [-metrics-out FILE [-metrics-interval N]]
//	          [-cpuprofile FILE] [-memprofile FILE]
//	reducerun -shards N [-clients C] [-serve-ops N] [-blocks N]
//	          [-dedup R] [-seed N] [-faults SEED:RATE] [-json]
//	reducerun -nodes N [-replicas R] [-node-faults SEED:RATE] [-shards S]
//	          [-clients C] [-serve-ops N] [-blocks N] [-json]
//	reducerun -boot-storm [-shards N | -nodes N [-replicas R]]
//	          [-storm-clients C] [-sub-blocks K] [-par P] [-clients C]
//	          [-seed N] [-json]
//
// With -mode auto, the dummy-I/O calibration pass of §4(3) picks the
// fastest integration option for the platform first.
//
// -json prints the report as stable JSON on stdout (everything else moves
// to stderr); -trace-out writes a Chrome trace-event file of the run's
// virtual-time spans, viewable in Perfetto or chrome://tracing. The trace
// and report are bit-identical for any -par value at a fixed seed.
// -cpuprofile/-memprofile capture host pprof profiles of the run itself.
//
// -metrics-out enables the wall-clock metrics layer and writes a
// Prometheus text-format snapshot of it (pool utilization, per-stage wall
// time, Go runtime telemetry) to FILE — once at startup, every
// -metrics-interval seconds while running, and once at exit. Metrics are a
// strict side channel: every report and trace is bit-identical with them
// on or off.
//
// -shards switches from the stream pipeline to the sharded serving
// front-end: a deterministic closed-loop op mix is served across N
// independent volume shards by -clients concurrent workers. Client count
// and GOMAXPROCS affect only the wall clock — the report is bit-identical
// at a fixed seed and shard count.
//
// -nodes switches further to the replicated cluster tier: a read-mostly
// closed-loop mix is served across N nodes (each an array of -shards
// shards) with -replicas-way placement. -node-faults arms node crashes and
// replica divergence, ridden out by fallback reads, rejoin replay, and
// read-repair; the run ends with a full-range scrub. The report stays
// bit-identical for any -clients and GOMAXPROCS at fixed seeds.
//
// -boot-storm runs the VDI boot-storm scenario through the parallel batch
// read path instead of a closed-loop mix: -storm-clients desktops install
// one golden image (heavy dedup), then all of them re-read it at once.
// Unique chunks compress as -sub-blocks independent sub-blocks so the
// batch decode fans each blob out across -par workers; -clients drains
// shard (or node) queues. Both knobs are wall clock only — the batch
// report is bit-identical for any -par, -clients, and GOMAXPROCS.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"inlinered"
	"inlinered/internal/metrics"
)

func main() {
	mode := flag.String("mode", "auto", "integration mode: cpu-only, gpu-dedup, gpu-compress, gpu-both, auto")
	in := flag.String("in", "", "input file (default: generated stream)")
	mb := flag.Int64("mb", 256, "generated stream size in MiB")
	dd := flag.Float64("dedup", 2.0, "generated stream dedup ratio")
	cr := flag.Float64("comp", 2.0, "generated stream compression ratio")
	chunkSize := flag.Int("chunk", 4096, "chunk size in bytes")
	noDedup := flag.Bool("no-dedup", false, "disable deduplication")
	noCompress := flag.Bool("no-compress", false, "disable compression")
	destage := flag.Bool("destage", false, "include SSD destage completion in the makespan")
	seed := flag.Int64("seed", 1, "workload seed")
	noGPU := flag.Bool("no-gpu", false, "run on a platform without a GPU")
	qlz := flag.Bool("qlz", false, "use the QuickLZ-class CPU codec instead of LZSS")
	bypass := flag.Bool("entropy-bypass", false, "store high-entropy chunks raw without compressing")
	cdc := flag.Bool("cdc", false, "content-defined (Gear) chunking instead of fixed-size")
	par := flag.Int("par", 0, "host worker threads for the real computation (0 = all cores, 1 = serial; results are identical)")
	faults := flag.String("faults", "", "deterministic fault injection as SEED:RATE (e.g. 7:0.01); empty disables")
	shards := flag.Int("shards", 0, "serve a closed-loop op mix across N volume shards instead of running the stream pipeline")
	nodes := flag.Int("nodes", 0, "serve across a replicated cluster of N nodes (each an array of -shards shards)")
	replicas := flag.Int("replicas", 1, "cluster replication factor with -nodes (<= nodes)")
	nodeFaults := flag.String("node-faults", "", "node-level fault injection with -nodes as SEED:RATE (crashes + replica divergence); empty disables")
	clients := flag.Int("clients", 0, "concurrent serving workers with -shards (0 = one per shard; report is identical for any value)")
	bootStorm := flag.Bool("boot-storm", false, "run the VDI boot-storm batch-read scenario instead of a closed-loop mix")
	stormClients := flag.Int("storm-clients", 0, "booting desktops with -boot-storm (0 = the default 32)")
	stormPasses := flag.Int("storm-passes", 1, "storm repetitions with -boot-storm; the report covers the last pass, so passes >= 2 shows the warm-cache hit rate")
	subBlocks := flag.Int("sub-blocks", 4, "independent sub-blocks per unique chunk with -boot-storm (parallel-decode fan-out width)")
	serveOps := flag.Int("serve-ops", 20000, "closed-loop operations with -shards")
	blocks := flag.Int64("blocks", 16384, "LBA space in blocks with -shards")
	jsonOut := flag.Bool("json", false, "print the report as JSON on stdout (status goes to stderr)")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON file of the run's virtual-time spans")
	metricsOut := flag.String("metrics-out", "", "write wall-clock metrics (Prometheus text format) to this file; a pure side channel — reports are bit-identical with it on or off")
	metricsInterval := flag.Int("metrics-interval", 0, "seconds between -metrics-out snapshot rewrites while running (0 = final snapshot only)")
	cpuProfile := flag.String("cpuprofile", "", "write a host CPU pprof profile to this file")
	memProfile := flag.String("memprofile", "", "write a host heap pprof profile to this file")
	flag.Parse()

	// Human-readable chatter goes to stdout normally, but must not corrupt
	// the machine-readable stream under -json.
	info := os.Stdout
	if *jsonOut {
		info = os.Stderr
	}

	if *metricsOut != "" {
		stop, err := metrics.StartSnapshotter(*metricsOut, time.Duration(*metricsInterval)*time.Second)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := stop(); err != nil {
				fatal(err)
			}
			fmt.Fprintf(info, "wrote wall-clock metrics to %s\n", *metricsOut)
		}()
	}

	faultSeed, faultRate, err := parseFaults(*faults)
	if err != nil {
		fatal(err)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	if *bootStorm {
		runBootStorm(*nodes, *replicas, *shards, *clients, *stormClients, *subBlocks,
			*par, *stormPasses, *blocks, *seed, *jsonOut, info)
		return
	}
	if *nodes > 0 {
		nodeSeed, nodeRate, err := parseSeedRate("-node-faults", *nodeFaults)
		if err != nil {
			fatal(err)
		}
		runCluster(*nodes, *replicas, *shards, *clients, *serveOps, *blocks,
			*seed, faultSeed, faultRate, nodeSeed, nodeRate, *jsonOut, info)
		return
	}
	if *shards > 0 {
		runServe(*shards, *clients, *serveOps, *blocks, *dd, *seed, faultSeed, faultRate, *jsonOut, info)
		return
	}

	plat := inlinered.PaperPlatform()
	if *noGPU {
		plat = inlinered.CPUOnlyPlatform()
	}
	opts := inlinered.Options{
		DisableDedup:       *noDedup,
		DisableCompression: *noCompress,
		ChunkSize:          *chunkSize,
		IncludeDestage:     *destage,
		QuickLZ:            *qlz,
		EntropyBypass:      *bypass,
		ContentDefined:     *cdc,
		Parallelism:        *par,
		FaultSeed:          faultSeed,
		FaultRate:          faultRate,
	}
	if faultRate > 0 {
		fmt.Fprintf(info, "fault injection: seed %d, rate %g per opportunity\n\n", faultSeed, faultRate)
	}

	if *mode == "auto" {
		res, err := inlinered.Calibrate(plat, opts, 0)
		if err != nil {
			fatal(err)
		}
		opts.Mode = res.Best
		fmt.Fprintf(info, "calibration picked %s:\n", res.Best)
		for _, m := range inlinered.Modes {
			if r, ok := res.Reports[m]; ok {
				fmt.Fprintf(info, "  %-12s %10.0f IOPS\n", m, r.IOPS)
			}
		}
		fmt.Fprintln(info)
	} else {
		m, err := inlinered.ParseMode(*mode)
		if err != nil {
			fatal(err)
		}
		opts.Mode = m
	}

	if *traceOut != "" {
		opts.Recorder = inlinered.NewRecorder()
	}

	var src io.Reader
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		src = f
	} else {
		stream, err := inlinered.NewStream(inlinered.StreamSpec{
			TotalBytes:       *mb << 20,
			ChunkSize:        *chunkSize,
			DedupRatio:       *dd,
			CompressionRatio: *cr,
			Seed:             *seed,
		})
		if err != nil {
			fatal(err)
		}
		src = stream
		fmt.Fprintf(info, "generated stream: %d MiB, dedup %.1f, compression %.1f, seed %d\n\n", *mb, *dd, *cr, *seed)
	}

	rep, err := inlinered.Run(plat, opts, src)
	if err != nil {
		fatal(err)
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := opts.Recorder.WriteTrace(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(info, "wrote %d trace events to %s\n", opts.Recorder.Events(), *traceOut)
	}

	if *jsonOut {
		out, err := rep.JSON()
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(out)
	} else {
		fmt.Println(rep)
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
}

// runServe drives the sharded serving front-end with a deterministic
// closed-loop op mix and prints the merged report.
func runServe(shards, clients, ops int, blocks int64, dedup float64, seed, faultSeed int64, faultRate float64, jsonOut bool, info *os.File) {
	arr, err := inlinered.NewArray(inlinered.BlockDeviceOptions{
		Blocks:    blocks,
		Shards:    shards,
		FaultSeed: faultSeed,
		FaultRate: faultRate,
	})
	if err != nil {
		fatal(err)
	}
	list, err := inlinered.NewOps(inlinered.OpsSpec{
		Ops:        ops,
		Blocks:     blocks,
		WriteFrac:  0.6,
		TrimFrac:   0.05,
		DedupRatio: dedup,
		Hotspot:    0.5,
		Seed:       seed,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(info, "serving %d ops (plus %d-block fill) across %d shards\n\n", ops, blocks, shards)
	rep, err := arr.Serve(list, inlinered.ServeOptions{
		Clients:     clients,
		ContentSeed: seed,
		CleanEvery:  4096,
	})
	if err != nil {
		fatal(err)
	}
	if jsonOut {
		out, err := rep.JSON()
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(out)
	} else {
		fmt.Println(rep)
	}
}

// runBootStorm installs the golden image, then replays the interleaved
// per-client read storm through the parallel batch read path — on a
// sharded array by default, or across a replicated cluster with -nodes.
// With passes >= 2 the same storm repeats and the report covers the last
// pass: the warm-cache picture, where the admission policy's retained hot
// set shows up as the report's cache hit rate.
func runBootStorm(nodes, replicas, shards, clients, stormClients, subBlocks, par, passes int,
	blocks int64, seed int64, jsonOut bool, info *os.File) {
	spec := inlinered.DefaultBootStormSpec()
	if stormClients > 0 {
		spec.Clients = stormClients
	}
	spec.Seed = seed
	fill, err := spec.Fill()
	if err != nil {
		fatal(err)
	}
	lbas, err := spec.Storm()
	if err != nil {
		fatal(err)
	}
	if passes < 1 {
		passes = 1
	}
	opts := inlinered.BlockDeviceOptions{
		Blocks:      blocks,
		Shards:      shards,
		SubBlocks:   subBlocks,
		Parallelism: par,
	}
	fmt.Fprintf(info, "boot storm: %d clients x %d reads over a %d-block golden image (sub-blocks %d, decode workers %d, passes %d)\n\n",
		spec.Clients, spec.ReadsPerClient, spec.ImageBlocks, subBlocks, par, passes)

	var out []byte
	var summary string
	if nodes > 0 {
		opts.Nodes = nodes
		opts.Replicas = replicas
		cl, err := inlinered.NewCluster(opts)
		if err != nil {
			fatal(err)
		}
		defer cl.Close()
		if _, err := cl.Serve(fill, inlinered.ClusterServeOptions{ContentSeed: seed}); err != nil {
			fatal(err)
		}
		var rep *inlinered.ClusterReadBatchReport
		for p := 0; p < passes; p++ {
			rep, err = cl.ReadBatch(lbas, inlinered.ClusterReadBatchOptions{Clients: clients})
			if err != nil {
				fatal(err)
			}
		}
		if out, err = rep.JSON(); err != nil {
			fatal(err)
		}
		summary = rep.String()
	} else {
		arr, err := inlinered.NewArray(opts)
		if err != nil {
			fatal(err)
		}
		defer arr.Close()
		if _, err := arr.Serve(fill, inlinered.ServeOptions{ContentSeed: seed}); err != nil {
			fatal(err)
		}
		var rep *inlinered.ReadBatchReport
		for p := 0; p < passes; p++ {
			rep, err = arr.ReadBatch(lbas, inlinered.ReadBatchOptions{Clients: clients})
			if err != nil {
				fatal(err)
			}
		}
		if out, err = rep.JSON(); err != nil {
			fatal(err)
		}
		summary = rep.String()
	}
	if jsonOut {
		os.Stdout.Write(out)
	} else {
		fmt.Println(summary)
	}
}

// runCluster serves a read-mostly closed-loop mix across a replicated
// cluster, rides out injected node faults, and finishes with a scrub.
func runCluster(nodes, replicas, shards, clients, ops int, blocks int64,
	seed, faultSeed int64, faultRate float64, nodeSeed int64, nodeRate float64,
	jsonOut bool, info *os.File) {
	cl, err := inlinered.NewCluster(inlinered.BlockDeviceOptions{
		Blocks:        blocks,
		Shards:        shards,
		Nodes:         nodes,
		Replicas:      replicas,
		FaultSeed:     faultSeed,
		FaultRate:     faultRate,
		NodeFaultSeed: nodeSeed,
		NodeFaultRate: nodeRate,
	})
	if err != nil {
		fatal(err)
	}
	list, err := inlinered.NewOps(inlinered.ReadMostlyOps(ops, blocks, seed))
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(info, "serving %d read-mostly ops (plus %d-block fill) across %d nodes (R=%d)\n\n",
		ops, blocks, nodes, replicas)
	rep, err := cl.Serve(list, inlinered.ClusterServeOptions{
		Clients:     clients,
		ContentSeed: seed,
		CleanEvery:  4096,
	})
	if err != nil {
		fatal(err)
	}
	scrub, err := cl.Scrub()
	if err != nil {
		fatal(err)
	}
	if jsonOut {
		out, err := rep.JSON()
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(out)
	} else {
		fmt.Println(rep)
		fmt.Printf("  scrub: compared=%d mismatched=%d repaired=%d errors=%d\n",
			scrub.Compared, scrub.Mismatched, scrub.Repaired, scrub.Errors)
	}
}

// parseFaults parses the -faults knob: "SEED:RATE" with RATE in [0,1].
func parseFaults(s string) (seed int64, rate float64, err error) {
	return parseSeedRate("-faults", s)
}

// parseSeedRate parses a SEED:RATE fault knob with RATE in [0,1].
func parseSeedRate(flagName, s string) (seed int64, rate float64, err error) {
	if s == "" {
		return 0, 0, nil
	}
	colon := strings.IndexByte(s, ':')
	if colon < 0 {
		return 0, 0, fmt.Errorf("%s wants SEED:RATE, got %q", flagName, s)
	}
	seed, err = strconv.ParseInt(s[:colon], 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("%s seed: %w", flagName, err)
	}
	rate, err = strconv.ParseFloat(s[colon+1:], 64)
	if err != nil {
		return 0, 0, fmt.Errorf("%s rate: %w", flagName, err)
	}
	if rate < 0 || rate > 1 {
		return 0, 0, fmt.Errorf("%s rate must be in [0,1], got %g", flagName, rate)
	}
	return seed, rate, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "reducerun:", err)
	os.Exit(1)
}
