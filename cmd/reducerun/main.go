// Command reducerun runs the inline data reduction pipeline over a workload
// (a file, or a generated stream) on the simulated paper platform and
// prints the run report.
//
// Usage:
//
//	reducerun [-mode cpu-only|gpu-dedup|gpu-compress|gpu-both|auto]
//	          [-in FILE | -mb N -dedup R -comp R] [-chunk N]
//	          [-no-dedup] [-no-compress] [-destage] [-seed N]
//	          [-faults SEED:RATE]
//
// With -mode auto, the dummy-I/O calibration pass of §4(3) picks the
// fastest integration option for the platform first.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"inlinered"
)

func main() {
	mode := flag.String("mode", "auto", "integration mode: cpu-only, gpu-dedup, gpu-compress, gpu-both, auto")
	in := flag.String("in", "", "input file (default: generated stream)")
	mb := flag.Int64("mb", 256, "generated stream size in MiB")
	dd := flag.Float64("dedup", 2.0, "generated stream dedup ratio")
	cr := flag.Float64("comp", 2.0, "generated stream compression ratio")
	chunkSize := flag.Int("chunk", 4096, "chunk size in bytes")
	noDedup := flag.Bool("no-dedup", false, "disable deduplication")
	noCompress := flag.Bool("no-compress", false, "disable compression")
	destage := flag.Bool("destage", false, "include SSD destage completion in the makespan")
	seed := flag.Int64("seed", 1, "workload seed")
	noGPU := flag.Bool("no-gpu", false, "run on a platform without a GPU")
	qlz := flag.Bool("qlz", false, "use the QuickLZ-class CPU codec instead of LZSS")
	bypass := flag.Bool("entropy-bypass", false, "store high-entropy chunks raw without compressing")
	cdc := flag.Bool("cdc", false, "content-defined (Gear) chunking instead of fixed-size")
	par := flag.Int("par", 0, "host worker threads for the real computation (0 = all cores, 1 = serial; results are identical)")
	faults := flag.String("faults", "", "deterministic fault injection as SEED:RATE (e.g. 7:0.01); empty disables")
	flag.Parse()

	faultSeed, faultRate, err := parseFaults(*faults)
	if err != nil {
		fatal(err)
	}

	plat := inlinered.PaperPlatform()
	if *noGPU {
		plat = inlinered.CPUOnlyPlatform()
	}
	opts := inlinered.Options{
		DisableDedup:       *noDedup,
		DisableCompression: *noCompress,
		ChunkSize:          *chunkSize,
		IncludeDestage:     *destage,
		QuickLZ:            *qlz,
		EntropyBypass:      *bypass,
		ContentDefined:     *cdc,
		Parallelism:        *par,
		FaultSeed:          faultSeed,
		FaultRate:          faultRate,
	}
	if faultRate > 0 {
		fmt.Printf("fault injection: seed %d, rate %g per opportunity\n\n", faultSeed, faultRate)
	}

	switch *mode {
	case "cpu-only":
		opts.Mode = inlinered.CPUOnly
	case "gpu-dedup":
		opts.Mode = inlinered.GPUDedup
	case "gpu-compress":
		opts.Mode = inlinered.GPUCompress
	case "gpu-both":
		opts.Mode = inlinered.GPUBoth
	case "auto":
		res, err := inlinered.Calibrate(plat, opts, 0)
		if err != nil {
			fatal(err)
		}
		opts.Mode = res.Best
		fmt.Printf("calibration picked %s:\n", res.Best)
		for _, m := range inlinered.Modes {
			if r, ok := res.Reports[m]; ok {
				fmt.Printf("  %-12s %10.0f IOPS\n", m, r.IOPS)
			}
		}
		fmt.Println()
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}

	var src io.Reader
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		src = f
	} else {
		stream, err := inlinered.NewStream(inlinered.StreamSpec{
			TotalBytes:       *mb << 20,
			ChunkSize:        *chunkSize,
			DedupRatio:       *dd,
			CompressionRatio: *cr,
			Seed:             *seed,
		})
		if err != nil {
			fatal(err)
		}
		src = stream
		fmt.Printf("generated stream: %d MiB, dedup %.1f, compression %.1f, seed %d\n\n", *mb, *dd, *cr, *seed)
	}

	rep, err := inlinered.Run(plat, opts, src)
	if err != nil {
		fatal(err)
	}
	fmt.Println(rep)
}

// parseFaults parses the -faults knob: "SEED:RATE" with RATE in [0,1].
func parseFaults(s string) (seed int64, rate float64, err error) {
	if s == "" {
		return 0, 0, nil
	}
	colon := strings.IndexByte(s, ':')
	if colon < 0 {
		return 0, 0, fmt.Errorf("-faults wants SEED:RATE, got %q", s)
	}
	seed, err = strconv.ParseInt(s[:colon], 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("-faults seed: %w", err)
	}
	rate, err = strconv.ParseFloat(s[colon+1:], 64)
	if err != nil {
		return 0, 0, fmt.Errorf("-faults rate: %w", err)
	}
	if rate < 0 || rate > 1 {
		return 0, 0, fmt.Errorf("-faults rate must be in [0,1], got %g", rate)
	}
	return seed, rate, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "reducerun:", err)
	os.Exit(1)
}
