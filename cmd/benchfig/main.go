// Command benchfig regenerates the paper's tables and figures. Each
// experiment id (e1..e10) maps to one table or figure of the evaluation —
// see DESIGN.md for the index and EXPERIMENTS.md for recorded results.
//
// Usage:
//
//	benchfig [-exp e1|e2|...|e16|all] [-mb N] [-seed N] [-json]
//
// -mb scales the workload stream (the paper uses ~2048; the default 256
// keeps a full run to a few minutes).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"inlinered/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (e1..e16) or 'all'")
	mb := flag.Int("mb", 0, "stream size in MiB (0 = default / $INLINERED_STREAM_MB)")
	seed := flag.Int64("seed", 0, "workload seed (0 = default)")
	jsonOut := flag.Bool("json", false, "emit machine-readable metrics instead of tables")
	flag.Parse()

	cfg := experiments.DefaultConfig()
	if *mb > 0 {
		cfg.StreamBytes = int64(*mb) << 20
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}

	var runners []experiments.Runner
	if *exp == "all" {
		runners = experiments.All()
	} else {
		r, ok := experiments.Lookup(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "benchfig: unknown experiment %q (want e1..e16 or all)\n", *exp)
			os.Exit(2)
		}
		runners = []experiments.Runner{r}
	}

	if *jsonOut {
		out := map[string]interface{}{
			"stream_mb": cfg.StreamBytes >> 20,
			"seed":      cfg.Seed,
		}
		results := map[string]map[string]float64{}
		for _, r := range runners {
			res, err := r.Run(cfg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchfig: %s: %v\n", r.ID, err)
				os.Exit(1)
			}
			results[r.ID] = res.Metrics
		}
		out["experiments"] = results
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "benchfig:", err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("# inlinered experiment harness — stream %d MiB, seed %d\n\n", cfg.StreamBytes>>20, cfg.Seed)
	for _, r := range runners {
		start := time.Now()
		res, err := r.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchfig: %s: %v\n", r.ID, err)
			os.Exit(1)
		}
		res.Table.Fprint(os.Stdout)
		fmt.Printf("  (%s finished in %v wall time)\n\n", r.ID, time.Since(start).Round(time.Millisecond))
	}
}
