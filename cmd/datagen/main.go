// Command datagen writes a calibrated synthetic workload stream (the
// vdbench stand-in of the paper's evaluation) to a file or stdout. The
// stream's deduplication and compression ratios are calibrated against this
// repository's actual chunker and LZSS encoder, so a pipeline run over the
// output observes the requested ratios.
//
// Usage:
//
//	datagen -mb 256 -dedup 2.0 -comp 2.0 [-chunk 4096] [-recent]
//	        [-seed 1] [-o FILE]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"inlinered"
)

func main() {
	mb := flag.Int64("mb", 256, "stream size in MiB")
	dd := flag.Float64("dedup", 2.0, "dedup ratio (total/unique), >= 1")
	cr := flag.Float64("comp", 2.0, "compression ratio per unique chunk, >= 1")
	chunkSize := flag.Int("chunk", 4096, "chunk size in bytes")
	recent := flag.Bool("recent", false, "bias duplicate references toward recent chunks")
	seed := flag.Int64("seed", 1, "generator seed")
	out := flag.String("o", "-", "output file ('-' = stdout)")
	flag.Parse()

	stream, err := inlinered.NewStream(inlinered.StreamSpec{
		TotalBytes:       *mb << 20,
		ChunkSize:        *chunkSize,
		DedupRatio:       *dd,
		CompressionRatio: *cr,
		TemporalLocality: *recent,
		Seed:             *seed,
	})
	if err != nil {
		fatal(err)
	}

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	n, err := io.Copy(bw, stream)
	if err != nil {
		fatal(err)
	}
	if err := bw.Flush(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "datagen: wrote %d bytes (%d chunks, %d unique)\n",
		n, stream.Chunks(), stream.UniqueChunks())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
