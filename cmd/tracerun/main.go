// Command tracerun replays a block-I/O trace through the deduplicating,
// compressing volume and reports virtual latencies and space accounting.
// Traces come from a file (the text format of internal/trace) or from the
// built-in synthesizer.
//
// Usage:
//
//	tracerun -in trace.txt                        # replay a trace file
//	tracerun -ops 20000 -blocks 4096 -hotspot .8  # synthesize and replay
//	tracerun -ops 10000 -emit trace.txt           # synthesize, save, replay
//	tracerun -json -trace-out spans.json          # machine-readable outputs
//	tracerun -shards 4 -clients 8                 # sharded serving front-end
//	tracerun -faults 7:0.01                       # deterministic fault injection
//	tracerun -nodes 3 -replicas 2 -node-faults 1337:0.01  # replicated cluster
//
// -json prints the replay report as stable JSON on stdout; -trace-out
// writes a Chrome trace-event file of the volume's virtual-time spans.
// -cpuprofile/-memprofile capture host pprof profiles of the replay.
// -metrics-out FILE [-metrics-interval N] writes Prometheus text-format
// snapshots of the wall-clock metrics layer; reports and traces stay
// bit-identical with metrics on or off.
//
// -shards N routes the trace across N independent volume shards behind the
// goroutine-safe serving front-end, with -clients concurrent workers on the
// wall clock; the report is bit-identical for any client count. -trace-out
// requires -shards 1 and -nodes 1 (a recorder serves one volume's lanes).
//
// -faults SEED:RATE arms deterministic device-level fault injection in
// every mode (single volume, sharded, cluster). -nodes N replicates the
// replay across a cluster of N arrays with -replicas R-way placement;
// -node-faults SEED:RATE additionally injects node crashes and replica
// divergence, healed by rejoin replay and read-repair, and the replay
// finishes with a full-range scrub.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"inlinered/internal/cluster"
	"inlinered/internal/fault"
	"inlinered/internal/metrics"
	"inlinered/internal/obs"
	"inlinered/internal/serve"
	"inlinered/internal/trace"
	"inlinered/internal/volume"
	"inlinered/internal/workload"
)

func main() {
	in := flag.String("in", "", "trace file to replay (empty = synthesize)")
	emit := flag.String("emit", "", "also write the synthesized trace to this file")
	ops := flag.Int("ops", 20000, "synthesized operations")
	blocks := flag.Int64("blocks", 4096, "LBA space in blocks")
	writeFrac := flag.Float64("writes", 0.6, "write fraction")
	trimFrac := flag.Float64("trims", 0.05, "trim fraction")
	dd := flag.Float64("dedup", 2.0, "writes per distinct content")
	hotspot := flag.Float64("hotspot", 0.5, "fraction of ops on the hot 10% of blocks")
	cleanEvery := flag.Int("clean-every", 4096, "run the segment cleaner every N ops (0 = never)")
	seed := flag.Int64("seed", 1, "seed")
	noCompress := flag.Bool("no-compress", false, "disable compression")
	jsonOut := flag.Bool("json", false, "print the replay report as JSON on stdout")
	shards := flag.Int("shards", 1, "shard the volume N ways behind the serving front-end")
	clients := flag.Int("clients", 0, "concurrent serving workers (0 = one per shard/node; report is identical for any value)")
	faults := flag.String("faults", "", "deterministic device fault injection as SEED:RATE (e.g. 7:0.01); empty disables")
	nodes := flag.Int("nodes", 1, "replicate across a cluster of N nodes (each a full sharded array)")
	replicas := flag.Int("replicas", 1, "cluster replication factor (<= nodes)")
	nodeFaults := flag.String("node-faults", "", "node-level fault injection as SEED:RATE (crashes + replica divergence); empty disables")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON file of the replay's virtual-time spans")
	metricsOut := flag.String("metrics-out", "", "write wall-clock metrics (Prometheus text format) to this file; a pure side channel — reports are bit-identical with it on or off")
	metricsInterval := flag.Int("metrics-interval", 0, "seconds between -metrics-out snapshot rewrites while running (0 = final snapshot only)")
	cpuProfile := flag.String("cpuprofile", "", "write a host CPU pprof profile to this file")
	memProfile := flag.String("memprofile", "", "write a host heap pprof profile to this file")
	flag.Parse()

	if *metricsOut != "" {
		stop, err := metrics.StartSnapshotter(*metricsOut, time.Duration(*metricsInterval)*time.Second)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := stop(); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "tracerun: wrote wall-clock metrics to %s\n", *metricsOut)
		}()
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	var recs []trace.Record
	var err error
	if *in != "" {
		f, err2 := os.Open(*in)
		if err2 != nil {
			fatal(err2)
		}
		recs, err = trace.Read(f)
		f.Close()
	} else {
		recs, err = trace.Synthesize(trace.SynthSpec{
			Ops: *ops, Blocks: *blocks, WriteFrac: *writeFrac, TrimFrac: *trimFrac,
			DedupRatio: *dd, Hotspot: *hotspot, Seed: *seed,
		})
		if err == nil && *emit != "" {
			f, err2 := os.Create(*emit)
			if err2 != nil {
				fatal(err2)
			}
			if err2 := trace.Write(f, recs); err2 != nil {
				fatal(err2)
			}
			f.Close()
			fmt.Fprintf(os.Stderr, "tracerun: wrote %d records to %s\n", len(recs), *emit)
		}
	}
	if err != nil {
		fatal(err)
	}

	cfg := volume.DefaultConfig()
	cfg.Blocks = *blocks
	cfg.Compress = !*noCompress
	faultSeed, faultRate, err := parseSeedRate("-faults", *faults)
	if err != nil {
		fatal(err)
	}
	if faultRate > 0 {
		cfg.Faults = fault.Config{Seed: faultSeed, Rates: fault.Uniform(faultRate)}
	}

	if *nodes > 1 {
		// Replicated cluster: place the trace's LBA ranges across nodes,
		// ride out injected crashes, and scrub for replica agreement.
		if *traceOut != "" {
			fatal(fmt.Errorf("-trace-out requires -nodes 1 (a recorder serves one volume's lanes)"))
		}
		nodeSeed, nodeRate, err := parseSeedRate("-node-faults", *nodeFaults)
		if err != nil {
			fatal(err)
		}
		srvOps := make([]workload.Op, len(recs))
		for i, r := range recs {
			srvOps[i] = workload.Op{Kind: workload.OpKind(r.Op), LBA: r.LBA, Content: r.Content}
		}
		ccfg := cluster.Config{
			Volume:        cfg,
			Nodes:         *nodes,
			Replicas:      *replicas,
			ShardsPerNode: *shards,
		}
		if nodeRate > 0 {
			ccfg.NodeFaults = fault.Config{Seed: nodeSeed, Rates: fault.NodeUniform(nodeRate, nodeRate)}
		}
		cl, err := cluster.New(ccfg)
		if err != nil {
			fatal(err)
		}
		rep, err := cl.Serve(srvOps, cluster.RunOptions{
			Clients: *clients, ContentSeed: *seed, CleanEvery: *cleanEvery,
		})
		if err != nil {
			fatal(err)
		}
		scrub, err := cl.Scrub()
		if err != nil {
			fatal(err)
		}
		if *jsonOut {
			out, err := rep.JSON()
			if err != nil {
				fatal(err)
			}
			os.Stdout.Write(out)
		} else {
			fmt.Println(rep)
			fmt.Printf("  scrub: compared=%d mismatched=%d repaired=%d errors=%d\n",
				scrub.Compared, scrub.Mismatched, scrub.Repaired, scrub.Errors)
		}
		writeMemProfile(*memProfile)
		return
	}

	if *shards > 1 {
		// Sharded serving front-end: route the trace across independent
		// volume shards with concurrent workers.
		if *traceOut != "" {
			fatal(fmt.Errorf("-trace-out requires -shards 1 (a recorder serves one volume's lanes)"))
		}
		srvOps := make([]workload.Op, len(recs))
		for i, r := range recs {
			srvOps[i] = workload.Op{Kind: workload.OpKind(r.Op), LBA: r.LBA, Content: r.Content}
		}
		arr, err := serve.New(serve.Config{Volume: cfg, Shards: *shards})
		if err != nil {
			fatal(err)
		}
		rep, err := arr.Serve(srvOps, serve.RunOptions{
			Clients: *clients, ContentSeed: *seed, CleanEvery: *cleanEvery,
		})
		if err != nil {
			fatal(err)
		}
		if *jsonOut {
			out, err := rep.JSON()
			if err != nil {
				fatal(err)
			}
			os.Stdout.Write(out)
		} else {
			fmt.Println(rep)
		}
		writeMemProfile(*memProfile)
		return
	}

	var rec *obs.Recorder
	if *traceOut != "" {
		rec = obs.NewRecorder()
		cfg.Obs = rec
	}
	vol, err := volume.New(cfg)
	if err != nil {
		fatal(err)
	}
	rep, err := trace.Replay(vol, recs, cfg, trace.ReplayOptions{CleanEvery: *cleanEvery, Seed: *seed})
	if err != nil {
		fatal(err)
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := rec.WriteTrace(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "tracerun: wrote %d trace events to %s\n", rec.Events(), *traceOut)
	}

	if *jsonOut {
		out, err := rep.JSON()
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(out)
	} else {
		fmt.Println(rep)
	}

	writeMemProfile(*memProfile)
}

func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
}

// parseSeedRate parses a SEED:RATE fault knob with RATE in [0,1].
func parseSeedRate(flagName, s string) (seed int64, rate float64, err error) {
	if s == "" {
		return 0, 0, nil
	}
	colon := strings.IndexByte(s, ':')
	if colon < 0 {
		return 0, 0, fmt.Errorf("%s wants SEED:RATE, got %q", flagName, s)
	}
	seed, err = strconv.ParseInt(s[:colon], 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("%s seed: %w", flagName, err)
	}
	rate, err = strconv.ParseFloat(s[colon+1:], 64)
	if err != nil {
		return 0, 0, fmt.Errorf("%s rate: %w", flagName, err)
	}
	if rate < 0 || rate > 1 {
		return 0, 0, fmt.Errorf("%s rate must be in [0,1], got %g", flagName, rate)
	}
	return seed, rate, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracerun:", err)
	os.Exit(1)
}
