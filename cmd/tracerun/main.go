// Command tracerun replays a block-I/O trace through the deduplicating,
// compressing volume and reports virtual latencies and space accounting.
// Traces come from a file (the text format of internal/trace) or from the
// built-in synthesizer.
//
// Usage:
//
//	tracerun -in trace.txt                        # replay a trace file
//	tracerun -ops 20000 -blocks 4096 -hotspot .8  # synthesize and replay
//	tracerun -ops 10000 -emit trace.txt           # synthesize, save, replay
//	tracerun -json -trace-out spans.json          # machine-readable outputs
//	tracerun -shards 4 -clients 8                 # sharded serving front-end
//
// -json prints the replay report as stable JSON on stdout; -trace-out
// writes a Chrome trace-event file of the volume's virtual-time spans.
// -cpuprofile/-memprofile capture host pprof profiles of the replay.
//
// -shards N routes the trace across N independent volume shards behind the
// goroutine-safe serving front-end, with -clients concurrent workers on the
// wall clock; the report is bit-identical for any client count. -trace-out
// requires -shards 1 (a recorder serves one volume's lanes).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"inlinered/internal/obs"
	"inlinered/internal/serve"
	"inlinered/internal/trace"
	"inlinered/internal/volume"
	"inlinered/internal/workload"
)

func main() {
	in := flag.String("in", "", "trace file to replay (empty = synthesize)")
	emit := flag.String("emit", "", "also write the synthesized trace to this file")
	ops := flag.Int("ops", 20000, "synthesized operations")
	blocks := flag.Int64("blocks", 4096, "LBA space in blocks")
	writeFrac := flag.Float64("writes", 0.6, "write fraction")
	trimFrac := flag.Float64("trims", 0.05, "trim fraction")
	dd := flag.Float64("dedup", 2.0, "writes per distinct content")
	hotspot := flag.Float64("hotspot", 0.5, "fraction of ops on the hot 10% of blocks")
	cleanEvery := flag.Int("clean-every", 4096, "run the segment cleaner every N ops (0 = never)")
	seed := flag.Int64("seed", 1, "seed")
	noCompress := flag.Bool("no-compress", false, "disable compression")
	jsonOut := flag.Bool("json", false, "print the replay report as JSON on stdout")
	shards := flag.Int("shards", 1, "shard the volume N ways behind the serving front-end")
	clients := flag.Int("clients", 0, "concurrent serving workers (0 = one per shard; report is identical for any value)")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON file of the replay's virtual-time spans")
	cpuProfile := flag.String("cpuprofile", "", "write a host CPU pprof profile to this file")
	memProfile := flag.String("memprofile", "", "write a host heap pprof profile to this file")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	var recs []trace.Record
	var err error
	if *in != "" {
		f, err2 := os.Open(*in)
		if err2 != nil {
			fatal(err2)
		}
		recs, err = trace.Read(f)
		f.Close()
	} else {
		recs, err = trace.Synthesize(trace.SynthSpec{
			Ops: *ops, Blocks: *blocks, WriteFrac: *writeFrac, TrimFrac: *trimFrac,
			DedupRatio: *dd, Hotspot: *hotspot, Seed: *seed,
		})
		if err == nil && *emit != "" {
			f, err2 := os.Create(*emit)
			if err2 != nil {
				fatal(err2)
			}
			if err2 := trace.Write(f, recs); err2 != nil {
				fatal(err2)
			}
			f.Close()
			fmt.Fprintf(os.Stderr, "tracerun: wrote %d records to %s\n", len(recs), *emit)
		}
	}
	if err != nil {
		fatal(err)
	}

	cfg := volume.DefaultConfig()
	cfg.Blocks = *blocks
	cfg.Compress = !*noCompress

	if *shards > 1 {
		// Sharded serving front-end: route the trace across independent
		// volume shards with concurrent workers.
		if *traceOut != "" {
			fatal(fmt.Errorf("-trace-out requires -shards 1 (a recorder serves one volume's lanes)"))
		}
		srvOps := make([]workload.Op, len(recs))
		for i, r := range recs {
			srvOps[i] = workload.Op{Kind: workload.OpKind(r.Op), LBA: r.LBA, Content: r.Content}
		}
		arr, err := serve.New(serve.Config{Volume: cfg, Shards: *shards})
		if err != nil {
			fatal(err)
		}
		rep, err := arr.Serve(srvOps, serve.RunOptions{
			Clients: *clients, ContentSeed: *seed, CleanEvery: *cleanEvery,
		})
		if err != nil {
			fatal(err)
		}
		if *jsonOut {
			out, err := rep.JSON()
			if err != nil {
				fatal(err)
			}
			os.Stdout.Write(out)
		} else {
			fmt.Println(rep)
		}
		writeMemProfile(*memProfile)
		return
	}

	var rec *obs.Recorder
	if *traceOut != "" {
		rec = obs.NewRecorder()
		cfg.Obs = rec
	}
	vol, err := volume.New(cfg)
	if err != nil {
		fatal(err)
	}
	rep, err := trace.Replay(vol, recs, cfg, trace.ReplayOptions{CleanEvery: *cleanEvery, Seed: *seed})
	if err != nil {
		fatal(err)
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := rec.WriteTrace(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "tracerun: wrote %d trace events to %s\n", rec.Events(), *traceOut)
	}

	if *jsonOut {
		out, err := rep.JSON()
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(out)
	} else {
		fmt.Println(rep)
	}

	writeMemProfile(*memProfile)
}

func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracerun:", err)
	os.Exit(1)
}
