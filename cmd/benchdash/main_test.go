package main

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// writeBench writes a minimal BENCH_<pr>.json fixture.
func writeBench(t *testing.T, dir string, pr int, host *Host, benches []Bench) {
	t.Helper()
	bf := BenchFile{
		LastUpdate: int64(1000 * pr),
		Entries: map[string][]Entry{seriesKey: {{
			Commit:  Commit{ID: strings.Repeat("a", 8) + "deadbeef", Message: "commit for PR"},
			Date:    int64(1000 * pr),
			Tool:    "go",
			Host:    host,
			Benches: benches,
		}}},
	}
	data, err := json.Marshal(bf)
	if err != nil {
		t.Fatal(err)
	}
	name := filepath.Join(dir, "BENCH_"+itoa(pr)+".json")
	if err := os.WriteFile(name, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func itoa(n int) string { return strconv.Itoa(n) }

func bench(name string, v float64, unit string) Bench {
	n := name
	if unit != "ns/op" && unit != "x" {
		n = name + " - " + unit
	}
	return Bench{Name: n, Value: v, Unit: unit}
}

// TestMergeOrdering pins numeric (not lexical) PR ordering: BENCH_10
// sorts after BENCH_9, not between BENCH_1 and BENCH_2.
func TestMergeOrdering(t *testing.T) {
	dir := t.TempDir()
	for _, pr := range []int{10, 2, 1, 9} {
		writeBench(t, dir, pr, nil, []Bench{bench("BenchmarkX", float64(pr), "ns/op")})
	}
	d, err := Build(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 9, 10}
	if len(d.PRs) != len(want) {
		t.Fatalf("got %v PRs, want %v", d.PRs, want)
	}
	for i, pr := range want {
		if d.PRs[i] != pr {
			t.Fatalf("PR order %v, want %v", d.PRs, want)
		}
		if d.Entries[i].PR != pr {
			t.Errorf("entry %d not stamped with PR %d", i, pr)
		}
	}
}

// TestSeriesGapsAndHosts pins the two tolerance requirements: entries
// without a host field merge cleanly, and a benchmark absent from an
// older trajectory point yields a gap (NaN), not an error or a zero.
func TestSeriesGapsAndHosts(t *testing.T) {
	dir := t.TempDir()
	writeBench(t, dir, 1, nil, []Bench{
		bench("BenchmarkOld/a", 100, "ns/op"),
	})
	h2 := &Host{CPU: "cpu-a", Threads: 1, GOMAXPROCS: 1, GOARCH: "amd64", GoVersion: "go1.24"}
	writeBench(t, dir, 2, h2, []Bench{
		bench("BenchmarkOld/a", 90, "ns/op"),
		bench("BenchmarkNew/b", 7, "ns/op"),
	})
	h3 := &Host{CPU: "cpu-b", Threads: 8, GOMAXPROCS: 8, GOARCH: "arm64", GoVersion: "go1.24"}
	writeBench(t, dir, 3, h3, []Bench{
		bench("BenchmarkOld/a", 80, "ns/op"),
		bench("BenchmarkNew/b", 6, "ns/op"),
	})

	d, err := Build(dir)
	if err != nil {
		t.Fatal(err)
	}
	var newSeries *Series
	for si := range d.Sections {
		for ci := range d.Sections[si].Charts {
			c := &d.Sections[si].Charts[ci]
			if c.Title == "BenchmarkNew" {
				newSeries = &c.Series[0]
			}
		}
	}
	if newSeries == nil {
		t.Fatal("BenchmarkNew chart not built")
	}
	if !math.IsNaN(newSeries.Values[0]) {
		t.Errorf("missing PR-1 point should be NaN, got %v", newSeries.Values[0])
	}
	if newSeries.Values[1] != 7 || newSeries.Values[2] != 6 {
		t.Errorf("series values %v", newSeries.Values)
	}

	// Host changes: first known host (PR 2) and the switch (PR 3); the
	// hostless PR 1 must neither annotate nor error.
	if len(d.HostChanges) != 2 || d.HostChanges[0].PR != 2 || d.HostChanges[1].PR != 3 {
		t.Errorf("host changes %+v, want PRs 2 and 3", d.HostChanges)
	}
	if !strings.Contains(d.HostChanges[1].Desc, "cpu-b") {
		t.Errorf("host change desc %q", d.HostChanges[1].Desc)
	}
}

// TestFacetPastPaletteCap pins the series cap: a benchmark group with
// more sub-benchmarks than validated categorical slots facets into
// single-series small multiples rather than cycling hues.
func TestFacetPastPaletteCap(t *testing.T) {
	dir := t.TempDir()
	var bs []Bench
	subs := []string{"a", "b", "c", "d", "e"}
	for _, s := range subs {
		bs = append(bs, bench("BenchmarkWide/"+s, 1, "ns/op"))
	}
	bs = append(bs, bench("BenchmarkNarrow/x", 1, "ns/op"), bench("BenchmarkNarrow/y", 2, "ns/op"))
	writeBench(t, dir, 1, nil, bs)

	d, err := Build(dir)
	if err != nil {
		t.Fatal(err)
	}
	var titles []string
	for _, sec := range d.Sections {
		for _, c := range sec.Charts {
			titles = append(titles, c.Title)
			if len(c.Series) > maxSeriesPerChart {
				t.Errorf("chart %q has %d series, cap is %d", c.Title, len(c.Series), maxSeriesPerChart)
			}
		}
	}
	for _, s := range subs {
		want := "BenchmarkWide/" + s
		found := false
		for _, ti := range titles {
			if ti == want {
				found = true
			}
		}
		if !found {
			t.Errorf("faceted chart %q missing (titles %v)", want, titles)
		}
	}
	// The two-series group stays one chart.
	narrow := 0
	for _, ti := range titles {
		if strings.HasPrefix(ti, "BenchmarkNarrow") {
			narrow++
		}
	}
	if narrow != 1 {
		t.Errorf("BenchmarkNarrow split into %d charts, want 1", narrow)
	}
}

// TestDataJS pins the merged data.js shape: the assignment prefix, valid
// JSON after it, entries in PR order, and lastUpdate = newest point.
func TestDataJS(t *testing.T) {
	dir := t.TempDir()
	writeBench(t, dir, 2, nil, []Bench{bench("BenchmarkX", 2, "ns/op")})
	writeBench(t, dir, 1, nil, []Bench{bench("BenchmarkX", 1, "ns/op")})
	d, err := Build(dir)
	if err != nil {
		t.Fatal(err)
	}
	out, err := d.DataJS()
	if err != nil {
		t.Fatal(err)
	}
	const prefix = "window.BENCHMARK_DATA = "
	if !strings.HasPrefix(string(out), prefix) {
		t.Fatalf("data.js must start with %q", prefix)
	}
	var bf BenchFile
	if err := json.Unmarshal(out[len(prefix):], &bf); err != nil {
		t.Fatalf("payload after prefix is not JSON: %v", err)
	}
	es := bf.Entries[seriesKey]
	if len(es) != 2 || es[0].PR != 1 || es[1].PR != 2 {
		t.Fatalf("merged entries out of order: %+v", es)
	}
	if bf.LastUpdate != 2000 {
		t.Errorf("lastUpdate %d, want 2000 (newest point)", bf.LastUpdate)
	}
}

// TestHTMLSelfContained renders the dashboard and pins the contract the
// CI artifact depends on: no network references of any kind, an SVG line
// chart per group, a legend for multi-series charts, the table view, and
// the host-change note.
func TestHTMLSelfContained(t *testing.T) {
	dir := t.TempDir()
	writeBench(t, dir, 1, nil, []Bench{
		bench("BenchmarkPipe/serial", 100, "ns/op"),
		bench("BenchmarkPipe/parallel", 60, "ns/op"),
		bench("BenchmarkPipe/serial", 40, "MB/s"),
		{Name: "ratio: serial/parallel", Value: 1.6, Unit: "x"},
	})
	writeBench(t, dir, 2, &Host{CPU: "test-cpu <&>", Threads: 4}, []Bench{
		bench("BenchmarkPipe/serial", 90, "ns/op"),
		bench("BenchmarkPipe/parallel", 55, "ns/op"),
		bench("BenchmarkPipe/serial", 44, "MB/s"),
		{Name: "ratio: serial/parallel", Value: 1.63, Unit: "x"},
	})
	d, err := Build(dir)
	if err != nil {
		t.Fatal(err)
	}
	page := string(d.HTML("trajectory"))

	for _, banned := range []string{"http:", "https:", "//cdn", "<script src", "<link "} {
		if strings.Contains(page, banned) {
			t.Errorf("page references the network: found %q", banned)
		}
	}
	for _, want := range []string{
		"<svg", "path class=\"line s1\"", "path class=\"line s2\"", // two series, two slots
		"class=\"legend\"",     // legend for the multi-series chart
		"Data table",           // table view
		"Host changes",         // annotation note
		"line class=\"annot\"", // annotation marker in the SVG
		"crosshair",            // hover layer
		"prefers-color-scheme", // selected dark mode
		"test-cpu &lt;&amp;&gt;",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("page missing %q", want)
		}
	}
	if strings.Contains(page, "test-cpu <&>") {
		t.Error("host string not escaped")
	}

	// Ratio chart: single series on the ratio plot for this fixture.
	if !strings.Contains(page, "Headline ratios (geomean ns/op)") {
		t.Error("ratio chart missing")
	}
	// All sections in fixed order.
	i1 := strings.Index(page, "Wall-clock time (ns/op)")
	i2 := strings.Index(page, "Throughput (MB/s)")
	i3 := strings.Index(page, "Headline ratios")
	if i1 < 0 || i2 < 0 || i3 < 0 || !(i1 < i2 && i2 < i3) {
		t.Errorf("section order wrong: ns/op@%d MB/s@%d ratios@%d", i1, i2, i3)
	}
}

// TestRepoTrajectory runs the merger over the repo's real committed
// trajectory points, so a malformed BENCH_<n>.json can never land.
func TestRepoTrajectory(t *testing.T) {
	d, err := Build("../..")
	if err != nil {
		t.Fatal(err)
	}
	if len(d.PRs) < 2 {
		t.Fatalf("expected at least the PR-6 and PR-7 trajectory points, got %v", d.PRs)
	}
	if d.ChartCount() == 0 {
		t.Fatal("no charts built from committed trajectory")
	}
	if _, err := d.DataJS(); err != nil {
		t.Fatal(err)
	}
	page := string(d.HTML("x"))
	if strings.Contains(page, "http") {
		t.Error("rendered dashboard references the network")
	}
}

func TestFormatVal(t *testing.T) {
	cases := map[float64]string{
		0:         "0",
		1.63:      "1.63",
		490864000: "491M",
		55937.3:   "55.9K",
		136.716:   "137",
		2.5e12:    "2.5T",
	}
	for in, want := range cases {
		if got := formatVal(in); got != want {
			t.Errorf("formatVal(%g) = %q, want %q", in, got, want)
		}
	}
	if got := formatVal(math.NaN()); got != "—" {
		t.Errorf("NaN formatted as %q", got)
	}
}

func TestNiceStep(t *testing.T) {
	cases := map[float64]float64{
		100:  25,
		1000: 250,
		7:    2,
		1.6:  0.5,
		0:    1,
	}
	for in, want := range cases {
		if got := niceStep(in); math.Abs(got-want) > 1e-9 {
			t.Errorf("niceStep(%g) = %g, want %g", in, got, want)
		}
	}
}
