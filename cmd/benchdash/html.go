package main

import (
	"encoding/json"
	"fmt"
	"html"
	"math"
	"strconv"
	"strings"
)

// Chart geometry. The SVG coordinate space is fixed; CSS scales it.
const (
	chartW = 720
	chartH = 260
	padL   = 56 // y tick labels
	padR   = 14
	padT   = 12
	padB   = 30 // x tick labels
)

// HTML renders the dashboard as one self-contained page: inline CSS
// (light and dark from the same validated palette), inline SVG line
// charts, and one inline script for the hover layer and theme toggle.
// Nothing references the network.
func (d *Dashboard) HTML(title string) []byte {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n")
	b.WriteString("<meta name=\"viewport\" content=\"width=device-width, initial-scale=1\">\n")
	fmt.Fprintf(&b, "<title>%s</title>\n", html.EscapeString(title))
	b.WriteString("<style>\n" + pageCSS + "</style>\n</head>\n<body>\n")

	fmt.Fprintf(&b, "<header><h1>%s</h1>", html.EscapeString(title))
	b.WriteString(`<button id="theme" type="button">theme: auto</button></header>` + "\n")
	fmt.Fprintf(&b, "<p class=\"sub\">%d trajectory points, PR %d to PR %d. Geomean per PR; hover or focus a column for exact values, or open a chart&#39;s data table.</p>\n",
		len(d.PRs), d.PRs[0], d.PRs[len(d.PRs)-1])

	if len(d.HostChanges) > 0 {
		b.WriteString("<div class=\"hosts\"><strong>Host changes</strong> (vertical markers on every chart): ")
		for i, hc := range d.HostChanges {
			if i > 0 {
				b.WriteString("; ")
			}
			fmt.Fprintf(&b, "PR %d &#8594; %s", hc.PR, html.EscapeString(hc.Desc))
		}
		b.WriteString(". Wall-clock numbers are not comparable across hosts.</div>\n")
	}

	// Shared per-PR metadata for the tooltip, escaped here so the
	// script can assign innerHTML without re-escaping.
	b.WriteString(`<script type="application/json" id="meta">`)
	b.Write(d.metaJSON())
	b.WriteString("</script>\n")

	for _, sec := range d.Sections {
		fmt.Fprintf(&b, "<h2>%s</h2>\n<div class=\"grid\">\n", html.EscapeString(sec.Title))
		for ci := range sec.Charts {
			d.writeChart(&b, &sec.Charts[ci])
		}
		b.WriteString("</div>\n")
	}

	b.WriteString(`<div id="tip" role="status"></div>` + "\n")
	b.WriteString("<script>\n" + pageJS + "</script>\n</body>\n</html>\n")
	return []byte(b.String())
}

// metaJSON emits the per-PR tooltip header lines (PR, short commit,
// message, host), HTML-escaped.
func (d *Dashboard) metaJSON() []byte {
	type meta struct {
		PR     int    `json:"pr"`
		Commit string `json:"commit"`
		Msg    string `json:"msg"`
		Host   string `json:"host"`
	}
	ms := make([]meta, len(d.Entries))
	for i, e := range d.Entries {
		id := e.Commit.ID
		if len(id) > 8 {
			id = id[:8]
		}
		msg := e.Commit.Message
		if len(msg) > 72 {
			msg = msg[:72] + "…"
		}
		ms[i] = meta{
			PR:     e.PR,
			Commit: html.EscapeString(id),
			Msg:    html.EscapeString(msg),
			Host:   html.EscapeString(e.Host.String()),
		}
	}
	out, _ := json.Marshal(ms)
	return out
}

// writeChart renders one figure: header, legend (for multi-series), SVG
// plot, embedded series data for the tooltip, and the table view.
func (d *Dashboard) writeChart(b *strings.Builder, c *Chart) {
	n := len(d.PRs)
	plotW := float64(chartW - padL - padR)
	plotH := float64(chartH - padT - padB)
	band := plotW / float64(n)
	x := func(i int) float64 { return float64(padL) + (float64(i)+0.5)*band }

	ymax := 0.0
	for _, s := range c.Series {
		for _, v := range s.Values {
			if !math.IsNaN(v) && v > ymax {
				ymax = v
			}
		}
	}
	step := niceStep(ymax)
	ymax = math.Ceil(ymax/step+1e-9) * step
	if ymax == 0 {
		ymax = 1
	}
	y := func(v float64) float64 { return float64(padT) + (1-v/ymax)*plotH }

	b.WriteString("<figure class=\"chart\">\n")
	fmt.Fprintf(b, "<figcaption><span class=\"ct\">%s</span><span class=\"cu\">%s</span></figcaption>\n",
		html.EscapeString(strings.TrimPrefix(c.Title, "Benchmark")), html.EscapeString(c.Unit))
	if len(c.Series) > 1 {
		b.WriteString("<div class=\"legend\">")
		for j, s := range c.Series {
			fmt.Fprintf(b, "<span class=\"item\"><span class=\"key s%d\"></span>%s</span>",
				j%maxSeriesPerChart+1, html.EscapeString(s.Label))
		}
		b.WriteString("</div>\n")
	}

	fmt.Fprintf(b, "<svg viewBox=\"0 0 %d %d\" role=\"img\" aria-label=\"%s, %s per PR\">\n",
		chartW, chartH, html.EscapeString(c.Title), html.EscapeString(c.Unit))

	// Horizontal gridlines and y tick labels at each step.
	for v := 0.0; v <= ymax+1e-9; v += step {
		yy := y(v)
		cls := "grid"
		if v == 0 {
			cls = "axis"
		}
		fmt.Fprintf(b, "<line class=\"%s\" x1=\"%d\" y1=\"%.1f\" x2=\"%d\" y2=\"%.1f\"/>\n",
			cls, padL, yy, chartW-padR, yy)
		fmt.Fprintf(b, "<text class=\"tick\" x=\"%d\" y=\"%.1f\" text-anchor=\"end\">%s</text>\n",
			padL-8, yy+4, formatVal(v))
	}

	// X tick labels: thin to at most ~12 so they never collide.
	lstep := (n + 11) / 12
	for i := 0; i < n; i += lstep {
		fmt.Fprintf(b, "<text class=\"tick\" x=\"%.1f\" y=\"%d\" text-anchor=\"middle\">%d</text>\n",
			x(i), chartH-padB+20, d.PRs[i])
	}

	// Host-change annotation markers.
	for _, hc := range d.HostChanges {
		for i, pr := range d.PRs {
			if pr == hc.PR {
				fmt.Fprintf(b, "<line class=\"annot\" x1=\"%.1f\" y1=\"%d\" x2=\"%.1f\" y2=\"%d\"/>\n",
					x(i), padT, x(i), chartH-padB)
			}
		}
	}

	// Lines (paths broken at gaps) then markers, so dots sit on top.
	for j, s := range c.Series {
		var path strings.Builder
		pen := false
		for i, v := range s.Values {
			if math.IsNaN(v) {
				pen = false
				continue
			}
			if pen {
				fmt.Fprintf(&path, " L %.1f %.1f", x(i), y(v))
			} else {
				fmt.Fprintf(&path, " M %.1f %.1f", x(i), y(v))
				pen = true
			}
		}
		fmt.Fprintf(b, "<path class=\"line s%d\" d=\"%s\"/>\n", j%maxSeriesPerChart+1, strings.TrimSpace(path.String()))
	}
	for j, s := range c.Series {
		for i, v := range s.Values {
			if math.IsNaN(v) {
				continue
			}
			fmt.Fprintf(b, "<circle class=\"mark s%d\" cx=\"%.1f\" cy=\"%.1f\" r=\"4\"/>\n",
				j%maxSeriesPerChart+1, x(i), y(v))
		}
	}

	// Crosshair (shown by the hover layer) and per-PR hit columns. The
	// hit target is the full band height — far larger than the marks.
	fmt.Fprintf(b, "<line class=\"crosshair\" x1=\"0\" y1=\"%d\" x2=\"0\" y2=\"%d\"/>\n", padT, chartH-padB)
	for i := range d.PRs {
		fmt.Fprintf(b, "<rect class=\"hit\" tabindex=\"0\" data-i=\"%d\" data-cx=\"%.1f\" x=\"%.1f\" y=\"%d\" width=\"%.1f\" height=\"%.0f\"/>\n",
			i, x(i), float64(padL)+float64(i)*band, padT, band, plotH)
	}
	b.WriteString("</svg>\n")

	// Embedded series data for the tooltip: formatted values, null at gaps.
	b.WriteString(`<script type="application/json" class="cd">`)
	b.Write(c.dataJSON())
	b.WriteString("</script>\n")

	// Table view: the WCAG-clean twin of the plot.
	b.WriteString("<details class=\"tbl\"><summary>Data table</summary>\n<table>\n<thead><tr><th>PR</th>")
	for _, s := range c.Series {
		fmt.Fprintf(b, "<th>%s</th>", html.EscapeString(s.Label))
	}
	b.WriteString("</tr></thead>\n<tbody>\n")
	for i, pr := range d.PRs {
		fmt.Fprintf(b, "<tr><td>%d</td>", pr)
		for _, s := range c.Series {
			b.WriteString("<td>" + formatVal(s.Values[i]) + "</td>")
		}
		b.WriteString("</tr>\n")
	}
	b.WriteString("</tbody>\n</table>\n</details>\n</figure>\n")
}

// dataJSON emits the chart's series with pre-formatted values (null at
// gaps) for the tooltip script.
func (c *Chart) dataJSON() []byte {
	type ser struct {
		Label string    `json:"label"`
		Vals  []*string `json:"vals"`
	}
	out := struct {
		Unit   string `json:"unit"`
		Series []ser  `json:"series"`
	}{Unit: c.Unit}
	for _, s := range c.Series {
		vs := make([]*string, len(s.Values))
		for i, v := range s.Values {
			if !math.IsNaN(v) {
				f := formatVal(v)
				vs[i] = &f
			}
		}
		out.Series = append(out.Series, ser{Label: html.EscapeString(s.Label), Vals: vs})
	}
	body, _ := json.Marshal(out)
	return body
}

// niceStep picks a clean tick step (1/2/2.5/5 x 10^k) targeting about
// four gridlines.
func niceStep(max float64) float64 {
	if max <= 0 {
		return 1
	}
	raw := max / 4
	mag := math.Pow(10, math.Floor(math.Log10(raw)))
	for _, m := range []float64{1, 2, 2.5, 5} {
		if raw <= m*mag {
			return m * mag
		}
	}
	return 10 * mag
}

// formatVal compacts a value for ticks, tooltips, and the table: SI
// suffixes above 10^4, up-to-3-significant-digit decimals below.
func formatVal(v float64) string {
	if math.IsNaN(v) {
		return "—"
	}
	a := math.Abs(v)
	switch {
	case a >= 1e12:
		return trimNum(v/1e12) + "T"
	case a >= 1e9:
		return trimNum(v/1e9) + "G"
	case a >= 1e6:
		return trimNum(v/1e6) + "M"
	case a >= 1e4:
		return trimNum(v/1e3) + "K"
	default:
		return trimNum(v)
	}
}

func trimNum(v float64) string {
	s := strconv.FormatFloat(v, 'g', 3, 64)
	// 'g' can emit exponent notation for tick steps like 2.5e+03; those
	// all fall in the SI branches above, but guard anyway.
	if strings.ContainsAny(s, "eE") {
		s = strconv.FormatFloat(v, 'f', 0, 64)
	}
	return s
}

// pageCSS defines the validated palette as custom properties (light
// values, with the dark steps under both the OS preference and the
// data-theme toggle, toggle winning) and the mark specs: 2px lines, 8px
// markers ringed in the surface color, hairline solid gridlines, text in
// ink tokens only.
const pageCSS = `
:root {
  color-scheme: light;
  --surface-1: #fcfcfb;
  --page: #f9f9f7;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  --text-muted: #898781;
  --gridline: #e1e0d9;
  --baseline: #c3c2b7;
  --border: rgba(11,11,11,0.10);
  --series-1: #2a78d6;
  --series-2: #eb6834;
  --series-3: #1baf7a;
  --series-4: #eda100;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) {
    color-scheme: dark;
    --surface-1: #1a1a19;
    --page: #0d0d0d;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --text-muted: #898781;
    --gridline: #2c2c2a;
    --baseline: #383835;
    --border: rgba(255,255,255,0.10);
    --series-1: #3987e5;
    --series-2: #d95926;
    --series-3: #199e70;
    --series-4: #c98500;
  }
}
:root[data-theme="dark"] {
  color-scheme: dark;
  --surface-1: #1a1a19;
  --page: #0d0d0d;
  --text-primary: #ffffff;
  --text-secondary: #c3c2b7;
  --text-muted: #898781;
  --gridline: #2c2c2a;
  --baseline: #383835;
  --border: rgba(255,255,255,0.10);
  --series-1: #3987e5;
  --series-2: #d95926;
  --series-3: #199e70;
  --series-4: #c98500;
}
* { box-sizing: border-box; }
body {
  margin: 0 auto; padding: 24px; max-width: 1560px;
  background: var(--page); color: var(--text-primary);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
}
header { display: flex; align-items: baseline; gap: 16px; }
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 16px; margin: 28px 0 10px; }
.sub, .hosts { color: var(--text-secondary); margin: 4px 0 0; }
.hosts { margin-top: 10px; }
#theme {
  margin-left: auto; padding: 4px 10px; cursor: pointer;
  background: var(--surface-1); color: var(--text-secondary);
  border: 1px solid var(--border); border-radius: 6px; font: inherit;
}
.grid { display: grid; grid-template-columns: repeat(auto-fill, minmax(380px, 1fr)); gap: 16px; }
figure.chart {
  margin: 0; padding: 12px 12px 8px;
  background: var(--surface-1);
  border: 1px solid var(--border); border-radius: 8px;
}
figcaption { display: flex; align-items: baseline; gap: 8px; }
.ct { font-weight: 600; }
.cu { color: var(--text-muted); font-size: 12px; }
.legend { display: flex; flex-wrap: wrap; gap: 4px 14px; margin: 4px 0 2px; color: var(--text-secondary); font-size: 12px; }
.legend .item { display: inline-flex; align-items: center; gap: 6px; }
.key { display: inline-block; width: 10px; height: 10px; border-radius: 5px; }
.key.s1 { background: var(--series-1); }
.key.s2 { background: var(--series-2); }
.key.s3 { background: var(--series-3); }
.key.s4 { background: var(--series-4); }
svg { display: block; width: 100%; height: auto; }
svg text { font: 11px system-ui, -apple-system, "Segoe UI", sans-serif; fill: var(--text-muted); font-variant-numeric: tabular-nums; }
.grid-line, line.grid { stroke: var(--gridline); stroke-width: 1; }
line.axis { stroke: var(--baseline); stroke-width: 1; }
line.annot { stroke: var(--baseline); stroke-width: 1; }
path.line { fill: none; stroke-width: 2; stroke-linecap: round; stroke-linejoin: round; }
path.line.s1 { stroke: var(--series-1); }
path.line.s2 { stroke: var(--series-2); }
path.line.s3 { stroke: var(--series-3); }
path.line.s4 { stroke: var(--series-4); }
circle.mark { stroke: var(--surface-1); stroke-width: 2; }
circle.mark.s1 { fill: var(--series-1); }
circle.mark.s2 { fill: var(--series-2); }
circle.mark.s3 { fill: var(--series-3); }
circle.mark.s4 { fill: var(--series-4); }
line.crosshair { stroke: var(--baseline); stroke-width: 1; display: none; pointer-events: none; }
rect.hit { fill: transparent; outline: none; }
rect.hit:focus-visible { fill: var(--gridline); fill-opacity: 0.35; }
details.tbl { margin-top: 6px; color: var(--text-secondary); font-size: 12px; }
details.tbl summary { cursor: pointer; color: var(--text-muted); }
details.tbl table { border-collapse: collapse; margin-top: 6px; font-variant-numeric: tabular-nums; }
details.tbl th, details.tbl td { text-align: right; padding: 2px 10px; border-bottom: 1px solid var(--gridline); }
details.tbl th:first-child, details.tbl td:first-child { text-align: left; }
#tip {
  position: absolute; display: none; z-index: 10; max-width: 340px;
  background: var(--surface-1); color: var(--text-primary);
  border: 1px solid var(--border); border-radius: 6px;
  padding: 8px 10px; font-size: 12px; pointer-events: none;
  box-shadow: 0 2px 8px rgba(0,0,0,0.12);
}
#tip .t-title { font-weight: 600; }
#tip .t-sub { color: var(--text-muted); margin-bottom: 2px; }
#tip .t-row { display: flex; align-items: center; gap: 6px; }
#tip .t-val { margin-left: auto; padding-left: 12px; font-variant-numeric: tabular-nums; }
`

// pageJS wires the hover/focus tooltip layer (the crosshair and the
// shared tooltip, fed from the embedded JSON) and the theme toggle.
// Values in the embedded data are pre-escaped by the generator.
const pageJS = `
(function () {
  var meta = JSON.parse(document.getElementById('meta').textContent);
  var tip = document.getElementById('tip');
  document.querySelectorAll('figure.chart').forEach(function (fig) {
    var data = JSON.parse(fig.querySelector('script.cd').textContent);
    var cross = fig.querySelector('line.crosshair');
    fig.querySelectorAll('rect.hit').forEach(function (hit) {
      var i = +hit.dataset.i;
      function show() {
        cross.setAttribute('x1', hit.dataset.cx);
        cross.setAttribute('x2', hit.dataset.cx);
        cross.style.display = 'block';
        var m = meta[i];
        var h = '<div class="t-title">PR ' + m.pr + ' · ' + m.commit + '</div>';
        if (m.msg) h += '<div class="t-sub">' + m.msg + '</div>';
        if (m.host) h += '<div class="t-sub">' + m.host + '</div>';
        data.series.forEach(function (s, j) {
          if (s.vals[i] == null) return;
          h += '<div class="t-row"><span class="key s' + (j % 4 + 1) + '"></span>' +
            s.label + '<span class="t-val">' + s.vals[i] + ' ' + data.unit + '</span></div>';
        });
        tip.innerHTML = h;
        tip.style.display = 'block';
        var r = hit.getBoundingClientRect();
        var x = r.left + r.width / 2 + window.scrollX - tip.offsetWidth / 2;
        x = Math.max(8, Math.min(x, window.scrollX + document.documentElement.clientWidth - tip.offsetWidth - 8));
        tip.style.left = x + 'px';
        tip.style.top = (r.top + window.scrollY - tip.offsetHeight - 8) + 'px';
      }
      function hide() {
        tip.style.display = 'none';
        cross.style.display = 'none';
      }
      hit.addEventListener('mouseenter', show);
      hit.addEventListener('mouseleave', hide);
      hit.addEventListener('focus', show);
      hit.addEventListener('blur', hide);
    });
  });
  var btn = document.getElementById('theme');
  btn.addEventListener('click', function () {
    var root = document.documentElement;
    var cur = root.getAttribute('data-theme');
    var next = cur === 'dark' ? 'light' : cur === 'light' ? '' : 'dark';
    if (next) root.setAttribute('data-theme', next);
    else root.removeAttribute('data-theme');
    btn.textContent = 'theme: ' + (next || 'auto');
  });
})();
`
