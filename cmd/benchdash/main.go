// Command benchdash merges the per-PR benchmark trajectory points
// (BENCH_<n>.json, written by scripts/bench-compare.sh in the
// github-action-benchmark data.js shape) into a cumulative data.js plus a
// self-contained static HTML/SVG dashboard of the benchmark trajectory:
// ns/op, MB/s, and allocs/op series per benchmark, the headline speedup
// ratios, and host-change annotations where the recording machine changed
// between PRs.
//
// Usage:
//
//	benchdash [-dir .] [-out benchdash] [-title "..."]
//
// -dir is scanned for BENCH_<n>.json files; <n> is the PR number and
// orders the series numerically (BENCH_10 after BENCH_9, not after
// BENCH_1). -out receives data.js (the merged trajectory, loadable by
// github-action-benchmark's default index.html) and index.html (the
// static dashboard — inline CSS, inline SVG, inline JS; no external
// fetches of any kind, so it renders from file:// and from a CI artifact
// page alike).
//
// Entries without a "host" envelope field (older trajectory points) are
// tolerated; host-change annotations only mark PRs where host metadata is
// present and differs from the last known host.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
)

func main() {
	dir := flag.String("dir", ".", "directory scanned for BENCH_<n>.json trajectory points")
	out := flag.String("out", "benchdash", "output directory for data.js and index.html")
	title := flag.String("title", "inlinered benchmark trajectory", "dashboard title")
	flag.Parse()

	dash, err := Build(*dir)
	if err != nil {
		fatal(err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	dataJS, err := dash.DataJS()
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(filepath.Join(*out, "data.js"), dataJS, 0o644); err != nil {
		fatal(err)
	}
	html := dash.HTML(*title)
	if err := os.WriteFile(filepath.Join(*out, "index.html"), html, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("benchdash: %d trajectory points (PR %d..%d), %d charts -> %s\n",
		len(dash.PRs), dash.PRs[0], dash.PRs[len(dash.PRs)-1], dash.ChartCount(), *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdash:", err)
	os.Exit(1)
}
