package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// seriesKey is the github-action-benchmark entry list every BENCH_<n>.json
// file uses (bench-compare.sh writes one entry under it per run).
const seriesKey = "Go Benchmark"

// maxSeriesPerChart caps how many lines share one plot. Four is the
// largest categorical palette that stays colorblind-safe for adjacent
// line series; groups with more sub-benchmarks facet into single-series
// small multiples instead of growing the palette.
const maxSeriesPerChart = 4

var benchFileRE = regexp.MustCompile(`^BENCH_([0-9]+)\.json$`)

// BenchFile is the github-action-benchmark data.js document shape.
type BenchFile struct {
	LastUpdate int64              `json:"lastUpdate"`
	RepoURL    string             `json:"repoUrl"`
	Entries    map[string][]Entry `json:"entries"`
}

// Commit identifies the trajectory point's commit.
type Commit struct {
	ID        string `json:"id"`
	Message   string `json:"message"`
	Timestamp string `json:"timestamp"`
	URL       string `json:"url"`
}

// Host is the optional recording-machine envelope bench-compare.sh adds
// to new trajectory points. Older points lack it entirely.
type Host struct {
	CPU        string `json:"cpu,omitempty"`
	Threads    int    `json:"threads,omitempty"`
	GOMAXPROCS int    `json:"gomaxprocs,omitempty"`
	GOARCH     string `json:"goarch,omitempty"`
	GoVersion  string `json:"go,omitempty"`
}

// Key collapses a host to a comparable identity string; an empty key
// means "unknown host".
func (h *Host) Key() string {
	if h == nil {
		return ""
	}
	return fmt.Sprintf("%s|%d|%d|%s|%s", h.CPU, h.Threads, h.GOMAXPROCS, h.GOARCH, h.GoVersion)
}

// String renders the host for annotations and tooltips.
func (h *Host) String() string {
	if h == nil {
		return ""
	}
	parts := []string{}
	if h.CPU != "" {
		parts = append(parts, h.CPU)
	}
	if h.Threads > 0 {
		parts = append(parts, fmt.Sprintf("%d thread(s)", h.Threads))
	}
	if h.GOMAXPROCS > 0 {
		parts = append(parts, fmt.Sprintf("GOMAXPROCS %d", h.GOMAXPROCS))
	}
	if h.GOARCH != "" {
		parts = append(parts, h.GOARCH)
	}
	if h.GoVersion != "" {
		parts = append(parts, h.GoVersion)
	}
	return strings.Join(parts, ", ")
}

// Entry is one trajectory point. PR is not part of the on-disk shape of
// the inputs; the merger stamps it from the filename so downstream
// consumers of the merged data.js can recover the ordering key.
type Entry struct {
	Commit  Commit  `json:"commit"`
	Date    int64   `json:"date"`
	Tool    string  `json:"tool"`
	Host    *Host   `json:"host,omitempty"`
	Benches []Bench `json:"benches"`
	PR      int     `json:"pr,omitempty"`
}

// Bench is one (benchmark, unit) measurement.
type Bench struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Unit  string  `json:"unit"`
	Extra string  `json:"extra,omitempty"`
}

// Series is one line on a chart: Values is aligned to the dashboard's PR
// list, with NaN where the benchmark did not exist yet (or was retired).
type Series struct {
	Label  string
	Values []float64
}

// Chart is one plot: up to maxSeriesPerChart series sharing a unit.
type Chart struct {
	Title  string
	Unit   string
	Series []Series
}

// Section groups charts by unit for the page layout.
type Section struct {
	Title  string
	Charts []Chart
}

// HostChange marks a PR whose recording host differs from the last known
// one (or is the first PR with host metadata at all).
type HostChange struct {
	PR   int
	Desc string
}

// Dashboard is the fully merged trajectory, ready to serialize.
type Dashboard struct {
	RepoURL     string
	PRs         []int
	Entries     []Entry // aligned to PRs
	Sections    []Section
	HostChanges []HostChange
}

// ChartCount reports the total number of charts across sections.
func (d *Dashboard) ChartCount() int {
	n := 0
	for _, s := range d.Sections {
		n += len(s.Charts)
	}
	return n
}

// Build scans dir for BENCH_<n>.json files and merges them into a
// dashboard, ordered numerically by <n>.
func Build(dir string) (*Dashboard, error) {
	entries, repoURL, err := load(dir)
	if err != nil {
		return nil, err
	}
	return assemble(entries, repoURL), nil
}

// load reads and orders the trajectory points.
func load(dir string) ([]Entry, string, error) {
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, "", err
	}
	type point struct {
		pr   int
		path string
	}
	var files []point
	for _, de := range des {
		m := benchFileRE.FindStringSubmatch(de.Name())
		if m == nil {
			continue
		}
		n, err := strconv.Atoi(m[1])
		if err != nil {
			continue
		}
		files = append(files, point{n, filepath.Join(dir, de.Name())})
	}
	if len(files) == 0 {
		return nil, "", fmt.Errorf("no BENCH_<n>.json files in %s", dir)
	}
	sort.Slice(files, func(i, j int) bool { return files[i].pr < files[j].pr })

	var entries []Entry
	repoURL := ""
	for _, f := range files {
		data, err := os.ReadFile(f.path)
		if err != nil {
			return nil, "", err
		}
		var bf BenchFile
		if err := json.Unmarshal(data, &bf); err != nil {
			return nil, "", fmt.Errorf("%s: %w", f.path, err)
		}
		if bf.RepoURL != "" {
			repoURL = bf.RepoURL
		}
		pts := bf.Entries[seriesKey]
		if len(pts) == 0 {
			return nil, "", fmt.Errorf("%s: no %q entries", f.path, seriesKey)
		}
		for _, e := range pts {
			e.PR = f.pr
			entries = append(entries, e)
		}
	}
	return entries, repoURL, nil
}

// caseName strips the " - <unit>" suffix github-action-benchmark's go
// parser appends for non-ns/op units, recovering the benchmark case name.
func caseName(b Bench) string {
	return strings.TrimSuffix(b.Name, " - "+b.Unit)
}

// assemble turns ordered entries into aligned series, charts, and
// sections.
func assemble(entries []Entry, repoURL string) *Dashboard {
	d := &Dashboard{RepoURL: repoURL, Entries: entries}
	for _, e := range entries {
		d.PRs = append(d.PRs, e.PR)
	}

	// Collect every (case, unit) into a PR-aligned value vector,
	// preserving first-seen order so charts stay stable across runs.
	type key struct{ name, unit string }
	vals := map[key][]float64{}
	var order []key
	for i, e := range entries {
		for _, b := range e.Benches {
			k := key{caseName(b), b.Unit}
			v, seen := vals[k]
			if !seen {
				v = make([]float64, len(entries))
				for j := range v {
					v[j] = math.NaN()
				}
				order = append(order, k)
			}
			v[i] = b.Value
			vals[k] = v
		}
	}

	// Group into charts: ratio benches (unit "x") share one plot; every
	// other case groups with its sibling sub-benchmarks per unit.
	type chartKey struct{ title, unit string }
	charts := map[chartKey]*Chart{}
	var chartOrder []chartKey
	for _, k := range order {
		var ck chartKey
		label := k.name
		if k.unit == "x" {
			ck = chartKey{"Headline ratios (geomean ns/op)", "x"}
			label = strings.TrimPrefix(k.name, "ratio: ")
		} else {
			parent := k.name
			if i := strings.IndexByte(k.name, '/'); i >= 0 {
				parent = k.name[:i]
				label = k.name[i+1:]
			}
			ck = chartKey{parent, k.unit}
		}
		c, seen := charts[ck]
		if !seen {
			c = &Chart{Title: ck.title, Unit: ck.unit}
			charts[ck] = c
			chartOrder = append(chartOrder, ck)
		}
		c.Series = append(c.Series, Series{Label: label, Values: vals[k]})
	}

	// Facet over-full charts into single-series small multiples rather
	// than growing the palette past its validated size.
	sections := map[string]*Section{}
	for _, ck := range chartOrder {
		c := charts[ck]
		sec := sectionFor(ck.unit)
		s, seen := sections[sec.Title]
		if !seen {
			s = &Section{Title: sec.Title}
			sections[sec.Title] = s
		}
		if len(c.Series) <= maxSeriesPerChart {
			s.Charts = append(s.Charts, *c)
			continue
		}
		for _, ser := range c.Series {
			s.Charts = append(s.Charts, Chart{
				Title:  c.Title + "/" + ser.Label,
				Unit:   c.Unit,
				Series: []Series{{Label: ser.Label, Values: ser.Values}},
			})
		}
	}
	for _, sec := range sectionOrder {
		if s, ok := sections[sec.Title]; ok {
			d.Sections = append(d.Sections, *s)
			delete(sections, sec.Title)
		}
	}
	// Any unit we did not anticipate still gets a section, in name order.
	var rest []string
	for t := range sections {
		rest = append(rest, t)
	}
	sort.Strings(rest)
	for _, t := range rest {
		d.Sections = append(d.Sections, *sections[t])
	}

	// Host-change annotations: mark a PR when its (known) host differs
	// from the last known host. Unknown hosts never trigger or reset.
	lastKnown := ""
	for _, e := range entries {
		k := e.Host.Key()
		if k == "" || k == lastKnown {
			continue
		}
		d.HostChanges = append(d.HostChanges, HostChange{PR: e.PR, Desc: e.Host.String()})
		lastKnown = k
	}
	return d
}

// sectionOrder fixes the page layout: time, throughput, allocations,
// ratios.
var sectionOrder = []Section{
	{Title: "Wall-clock time (ns/op)"},
	{Title: "Throughput (MB/s)"},
	{Title: "Allocations"},
	{Title: "Headline ratios"},
}

func sectionFor(unit string) Section {
	switch unit {
	case "ns/op":
		return sectionOrder[0]
	case "MB/s":
		return sectionOrder[1]
	case "allocs/op", "allocs/storage-op", "B/op":
		return sectionOrder[2]
	case "x":
		return sectionOrder[3]
	default:
		return Section{Title: "Other (" + unit + ")"}
	}
}

// DataJS renders the merged trajectory as a github-action-benchmark
// compatible data.js: one "Go Benchmark" series holding every PR's entry
// in order, each stamped with its PR number.
func (d *Dashboard) DataJS() ([]byte, error) {
	last := int64(0)
	for _, e := range d.Entries {
		if e.Date > last {
			last = e.Date
		}
	}
	doc := BenchFile{
		LastUpdate: last,
		RepoURL:    d.RepoURL,
		Entries:    map[string][]Entry{seriesKey: d.Entries},
	}
	body, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, err
	}
	var b strings.Builder
	b.WriteString("window.BENCHMARK_DATA = ")
	b.Write(body)
	b.WriteString("\n")
	return []byte(b.String()), nil
}
