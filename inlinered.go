// Package inlinered is a reproduction of "Parallelizing Inline Data
// Reduction Operations for Primary Storage Systems" (Ma & Park, PaCT 2017):
// an inline deduplication + LZSS compression pipeline for SSD-backed
// primary storage, parallelized across a multi-core CPU and a GPU.
//
// The public API wraps the integrated engine (internal/core) and the
// calibrated workload generator (internal/workload). A typical run:
//
//	stream, _ := inlinered.NewStream(inlinered.StreamSpec{
//		TotalBytes: 256 << 20, DedupRatio: 2, CompressionRatio: 2,
//	})
//	report, _ := inlinered.Run(inlinered.PaperPlatform(), inlinered.Options{
//		Mode: inlinered.GPUCompress,
//	}, stream)
//	fmt.Println(report)
//
// Everything runs on a deterministic virtual clock: the data plane (SHA-1
// fingerprints, the bin-based index, the LZSS codec) computes real results,
// while the CPU, GPU (SIMT + PCIe + kernel-launch costs), and SSD are
// simulated resources calibrated to the paper's testbed. See DESIGN.md for
// the substitution statement.
package inlinered

import (
	"io"
	"time"

	"inlinered/internal/cluster"
	"inlinered/internal/core"
	"inlinered/internal/fault"
	"inlinered/internal/lz"
	"inlinered/internal/obs"
	"inlinered/internal/serve"
	"inlinered/internal/workload"
)

// Mode selects which data reduction operation owns the GPU — the four
// integration options of the paper's §4(3).
type Mode = core.Mode

// The four integration options, in the paper's presentation order.
const (
	CPUOnly     = core.CPUOnly
	GPUDedup    = core.GPUDedup
	GPUCompress = core.GPUCompress
	GPUBoth     = core.GPUBoth
)

// Modes lists the four integration options.
var Modes = core.Modes

// ParseMode parses a mode name as rendered by Mode.String ("cpu-only",
// "gpu-dedup", "gpu-compress", "gpu-both").
func ParseMode(s string) (Mode, error) { return core.ParseMode(s) }

// Recorder collects virtual-time spans from a run (CPU pipeline stages, GPU
// kernels and DMAs, SSD channel operations) and exports them as Chrome
// trace-event JSON via WriteTrace — viewable in Perfetto or
// chrome://tracing. Recording happens on the sequential commit path, so at
// a fixed seed the trace bytes are bit-identical for any Parallelism. One
// recorder should serve one engine or block device.
type Recorder = obs.Recorder

// NewRecorder returns an empty trace recorder.
func NewRecorder() *Recorder { return obs.NewRecorder() }

// Platform describes the simulated hardware (CPU, GPU, SSD).
type Platform = core.Platform

// PaperPlatform returns the published testbed: an i7-3770K-class CPU, a
// Radeon HD 7970-class GPU, and an SSD 830-class drive (~80 K 4 KB-write
// IOPS — the baseline line in every figure).
func PaperPlatform() Platform { return core.PaperPlatform() }

// CPUOnlyPlatform returns the paper testbed without its GPU.
func CPUOnlyPlatform() Platform { return core.CPUOnlyPlatform() }

// WeakGPUPlatform returns a platform whose GPU is slow enough that
// calibration should route both operations to the CPU.
func WeakGPUPlatform() Platform { return core.WeakGPUPlatform() }

// Options tunes a pipeline run. The zero value is not valid; start from
// DefaultOptions (or leave fields zero in Run, which fills defaults).
type Options struct {
	// Mode is the integration option (default CPUOnly; use Calibrate to
	// pick the best one for a platform the way the paper's dummy-I/O pass
	// does).
	Mode Mode
	// DisableDedup / DisableCompression switch off one reduction operation
	// (the paper's §4(1) and §4(2) run them in isolation).
	DisableDedup       bool
	DisableCompression bool
	// ChunkSize is the reduction unit; 0 means the paper's 4 KB.
	ChunkSize int
	// IncludeDestage counts SSD destage completion in the makespan.
	IncludeDestage bool
	// Verify retains stored blobs so the run can be checked bit-for-bit
	// against the source stream (memory-proportional; for tests).
	Verify bool
	// QuickLZ selects the QuickLZ-class CPU codec (the paper's baseline
	// family) instead of the default hash-chain LZSS.
	QuickLZ bool
	// EntropyBypass stores high-entropy (incompressible) chunks raw
	// without running the encoder.
	EntropyBypass bool
	// ContentDefined switches chunking from fixed-size to the Gear
	// content-defined chunker.
	ContentDefined bool
	// Parallelism is the number of host worker threads used for the real
	// computation (hashing, compression). It affects only how fast the
	// simulation runs on the host: the Report is bit-identical for every
	// value. 0 means runtime.NumCPU(); 1 forces a serial run.
	Parallelism int
	// FaultRate enables deterministic fault injection: every survivable
	// fault kind (transient SSD errors, latency spikes, torn journal
	// records, GPU device loss, index memory pressure) fires with this
	// per-opportunity probability, scheduled by FaultSeed. 0 disables
	// injection and leaves the Report bit-identical to a build without it;
	// a fixed seed makes two runs bit-identical, fault counters included.
	FaultRate float64
	FaultSeed int64
	// Recorder attaches an observability recorder (NewRecorder) to the
	// run. Nil means off and leaves the Report bit-identical to a run
	// without observability.
	Recorder *Recorder
}

// Report summarizes a run: throughput (IOPS of chunk-sized writes and
// bytes/s of virtual time), achieved reduction ratios, duplicate-hit
// breakdown, resource utilizations, and SSD accounting.
type Report = core.Report

// Engine is a configured single-use pipeline.
type Engine struct {
	inner *core.Engine
}

// config converts Options into the internal configuration.
func (o Options) config() core.Config {
	cfg := core.DefaultConfig()
	cfg.Mode = o.Mode
	cfg.Dedup = !o.DisableDedup
	cfg.Compress = !o.DisableCompression
	if o.ChunkSize > 0 {
		cfg.ChunkSize = o.ChunkSize
	}
	cfg.IncludeDestage = o.IncludeDestage
	cfg.Verify = o.Verify
	if o.QuickLZ {
		cfg.Codec = lz.CodecQLZ
	}
	cfg.SkipIncompressible = o.EntropyBypass
	if o.ContentDefined {
		cfg.Chunker = core.CDCChunking
	}
	cfg.Parallelism = o.Parallelism
	if o.FaultRate > 0 {
		cfg.Faults = fault.Config{Seed: o.FaultSeed, Rates: fault.Uniform(o.FaultRate)}
	}
	cfg.Obs = o.Recorder
	return cfg
}

// NewEngine builds a pipeline for one run.
func NewEngine(plat Platform, opts Options) (*Engine, error) {
	inner, err := core.NewEngine(plat, opts.config())
	if err != nil {
		return nil, err
	}
	return &Engine{inner: inner}, nil
}

// Process runs the stream through the pipeline and reports the results.
func (e *Engine) Process(r io.Reader) (*Report, error) { return e.inner.Process(r) }

// Verify re-reads the original stream and checks that every chunk is
// reconstructable from what the pipeline stored. Requires Options.Verify.
func (e *Engine) Verify(r io.Reader) error { return e.inner.VerifyAgainst(r) }

// Run is the one-call convenience: build an engine, process the stream,
// return the report.
func Run(plat Platform, opts Options, r io.Reader) (*Report, error) {
	eng, err := NewEngine(plat, opts)
	if err != nil {
		return nil, err
	}
	return eng.Process(r)
}

// CalibrationResult reports the dummy-I/O calibration pass of §4(3).
type CalibrationResult = core.CalibrationResult

// Calibrate measures every integration option the platform supports on a
// short dummy stream and returns the fastest, as the paper prescribes for
// unknown platforms. sampleBytes <= 0 selects a 64 MiB dummy stream.
func Calibrate(plat Platform, opts Options, sampleBytes int64) (*CalibrationResult, error) {
	if sampleBytes <= 0 {
		sampleBytes = 64 << 20
	}
	return core.Calibrate(plat, opts.config(), sampleBytes)
}

// Op is one closed-loop block operation for Array.Serve. Write contents
// derive from Op.Content (two writes with the same id carry identical
// bytes), so op lists encode dedup behaviour without shipping payloads.
type Op = workload.Op

// OpKind is a closed-loop operation kind.
type OpKind = workload.OpKind

// The closed-loop operation kinds.
const (
	OpWrite = workload.OpWrite
	OpRead  = workload.OpRead
	OpTrim  = workload.OpTrim
)

// OpsSpec parameterizes the deterministic closed-loop op-mix generator: a
// sequential fill of the LBA space followed by the requested
// write/read/trim mix with optional hotspot and dedup knobs.
type OpsSpec = workload.ClosedLoopSpec

// NewOps generates a deterministic closed-loop op list for Array.Serve.
func NewOps(spec OpsSpec) ([]Op, error) { return workload.ClosedLoop(spec) }

// ReadMostlyOps returns the read-mostly closed-loop preset (a 90/9/1
// read/write/trim mix): the recovery-scenario workload, dominated by reads
// that must be served from a fallback replica during a node outage.
func ReadMostlyOps(ops int, blocks, seed int64) OpsSpec {
	return workload.ReadMostlySpec(ops, blocks, seed)
}

// BootStormSpec parameterizes the VDI boot-storm workload: many desktop
// clients reading the same golden image at once. Fill() yields the writes
// that install the image (heavily deduplicating, like cloned VM images);
// Storm() yields the interleaved per-client read stream for ReadBatch.
type BootStormSpec = workload.BootStormSpec

// DefaultBootStormSpec returns the stock boot-storm shape: 32 clients
// re-reading a 256-block golden image with jittered start offsets.
func DefaultBootStormSpec() BootStormSpec { return workload.DefaultBootStormSpec() }

// ReadOps extracts the read LBAs from a closed-loop op list, in order —
// the bridge from NewOps/ReadMostlyOps output to ReadBatch input.
func ReadOps(ops []Op) []int64 { return serve.ReadOps(ops) }

// ServeOptions tune an Array.Serve run. Only Clients affects the wall
// clock; the report is bit-identical for any client count.
type ServeOptions = serve.RunOptions

// ServeReport summarizes an Array.Serve run: merged stats (counters sum,
// histogram buckets merge) plus a per-shard breakdown, under the
// "inlinered/serve-report/v1" JSON schema. It excludes the client count and
// every wall-clock quantity, so two runs that differ only in scheduling
// encode to identical bytes.
type ServeReport = serve.Report

// Array is the sharded, goroutine-safe serving front-end over the
// deduplicating volume: LBAs route across N independent volume shards
// (lba % N), each with its own virtual clock, fault-injector stream, and
// journal region, so concurrent clients drive shards in parallel on the
// wall clock while every virtual-time result stays deterministic.
//
// Sharding parallelizes the wall clock, never the virtual one: at a fixed
// FaultSeed and shard count, Serve's merged report and per-shard stats are
// bit-identical for any client count and any GOMAXPROCS. The direct
// Write/Read/Trim methods (via the embedded BlockDevice surface) are
// goroutine-safe but interleave in arrival order, so only Serve promises
// cross-run bit-identity.
type Array struct {
	inner *serve.Array
}

// NewArray builds a sharded array from block-device options (Shards > 1
// requires Recorder to be nil: a recorder serves one volume's lanes).
func NewArray(opts BlockDeviceOptions) (*Array, error) {
	sc, err := opts.serveConfig()
	if err != nil {
		return nil, err
	}
	inner, err := serve.New(sc)
	if err != nil {
		return nil, err
	}
	return &Array{inner: inner}, nil
}

// Serve executes a batch of operations across the shards with
// opts.Clients concurrent workers and returns the merged report. Per-op
// errors (injected faults) are counted in the report, not fatal.
func (a *Array) Serve(ops []Op, opts ServeOptions) (*ServeReport, error) {
	return a.inner.Serve(ops, opts)
}

// Write stores one block. Safe for concurrent use.
func (a *Array) Write(lba int64, data []byte) (time.Duration, error) {
	return a.inner.Write(lba, data)
}

// Read returns the block at lba (zeros when unmapped) and its latency.
// Safe for concurrent use.
func (a *Array) Read(lba int64) ([]byte, time.Duration, error) { return a.inner.Read(lba) }

// Trim unmaps one block. Safe for concurrent use.
func (a *Array) Trim(lba int64) (time.Duration, error) { return a.inner.Trim(lba) }

// Clean runs every shard's segment cleaner.
func (a *Array) Clean() (int, error) { return a.inner.Clean() }

// Shards returns the shard count.
func (a *Array) Shards() int { return a.inner.Shards() }

// Now returns the array's virtual clock (the slowest shard's completion
// time).
func (a *Array) Now() time.Duration { return a.inner.Now() }

// Stats returns deterministically merged stats across shards.
func (a *Array) Stats() DeviceStats { return a.inner.Stats() }

// ShardStats returns each shard's stats in shard order.
func (a *Array) ShardStats() []DeviceStats { return a.inner.ShardStats() }

// ReadBatch executes a batch of reads through the parallel read path:
// sequential per-shard decision phase, one decode fan-out over the array's
// worker pool (Options.Parallelism), sequential commit. The report is
// bit-identical to issuing the reads serially, for any parallelism or
// client count.
func (a *Array) ReadBatch(lbas []int64, opts ReadBatchOptions) (*ReadBatchReport, error) {
	return a.inner.ReadBatch(lbas, opts)
}

// Close releases the array's decode worker pool (created on first
// ReadBatch when Options.Parallelism > 1). Idempotent; the array stays
// usable.
func (a *Array) Close() { a.inner.Close() }

// ClusterServeOptions tune a Cluster.Serve run. Only Clients affects the
// wall clock; the report is bit-identical for any client count.
type ClusterServeOptions = cluster.RunOptions

// ClusterReport summarizes a Cluster.Serve run under the
// "inlinered/cluster-report/v1" JSON schema: client-op totals, the
// membership/degraded-mode/repair counters, cluster-merged stats, and a
// per-node breakdown. Like ServeReport it excludes every wall-clock
// quantity, so runs differing only in scheduling encode identically.
type ClusterReport = cluster.Report

// ClusterFaultCounters tallies a batch's degraded-mode work: crashes and
// rejoins, fallback and unserved reads, queued mutations, divergences, and
// the repair traffic that healed them.
type ClusterFaultCounters = cluster.FaultCounters

// ScrubReport summarizes a Cluster.Scrub replica-agreement sweep.
type ScrubReport = cluster.ScrubReport

// RebalanceReport summarizes a Cluster.AddNode migration.
type RebalanceReport = cluster.RebalanceReport

// Cluster is the replicated tier over the sharded array: Nodes independent
// arrays with LBA ranges rendezvous-placed on Replicas of them. Writes
// replicate to every live owner, reads prefer the primary and fall back to
// a surviving replica during an outage, a crashed node replays the
// mutations it missed when it rejoins, and reads repair diverged copies
// they touch (Scrub sweeps the rest). The batch Serve path promises
// bit-identical reports for any client count and GOMAXPROCS at a fixed
// configuration — the same wall-clock-only parallelism contract as Array.
type Cluster struct {
	inner *cluster.Cluster
}

// NewCluster builds a replicated cluster from block-device options: Nodes
// arrays of opts.Shards shards each, with Replicas-way placement and
// optional node-level fault injection (NodeFaultRate/NodeFaultSeed).
func NewCluster(opts BlockDeviceOptions) (*Cluster, error) {
	inner, err := cluster.New(opts.clusterConfig())
	if err != nil {
		return nil, err
	}
	return &Cluster{inner: inner}, nil
}

// Serve executes a batch of operations across the cluster with
// opts.Clients concurrent workers and returns the merged report. Node
// crashes, rejoins, and replica repair all happen inside the batch; a
// Serve call always returns with every node live again.
func (c *Cluster) Serve(ops []Op, opts ClusterServeOptions) (*ClusterReport, error) {
	return c.inner.Serve(ops, opts)
}

// Scrub sweeps the full LBA range, compares every replica copy against its
// primary, and repairs disagreements.
func (c *Cluster) Scrub() (*ScrubReport, error) { return c.inner.Scrub() }

// AddNode grows the cluster by one node, migrating only the ranges the new
// node wins under rendezvous placement.
func (c *Cluster) AddNode() (*RebalanceReport, error) { return c.inner.AddNode() }

// Write stores one block on every owner replica synchronously. Safe for
// concurrent use.
func (c *Cluster) Write(lba int64, data []byte) (time.Duration, error) {
	return c.inner.Write(lba, data)
}

// Read returns the block at lba from its primary replica (zeros when
// unmapped). Safe for concurrent use.
func (c *Cluster) Read(lba int64) ([]byte, time.Duration, error) { return c.inner.Read(lba) }

// Trim unmaps one block on every owner replica. Safe for concurrent use.
func (c *Cluster) Trim(lba int64) (time.Duration, error) { return c.inner.Trim(lba) }

// Nodes returns the current node count.
func (c *Cluster) Nodes() int { return c.inner.Nodes() }

// Replicas returns the replication factor.
func (c *Cluster) Replicas() int { return c.inner.Replicas() }

// Now returns the cluster's virtual clock (the slowest node's clock).
func (c *Cluster) Now() time.Duration { return c.inner.Now() }

// Stats returns deterministically merged stats across every node.
func (c *Cluster) Stats() DeviceStats { return c.inner.Stats() }

// NodeStats returns each node's merged stats in node order.
func (c *Cluster) NodeStats() []DeviceStats { return c.inner.NodeStats() }

// ClusterReadBatchOptions tune a Cluster.ReadBatch run (wall clock only —
// nothing here may affect the report or the returned bytes).
type ClusterReadBatchOptions = cluster.ReadBatchOptions

// ClusterReadBatchReport summarizes a Cluster.ReadBatch run under the
// "inlinered/cluster-readbatch-report/v2" JSON schema. Like the serve-tier
// report it excludes client counts, decode parallelism, and wall clocks.
type ClusterReadBatchReport = cluster.ReadBatchReport

// ReadBatch executes a batch of reads across the cluster's healthy-cluster
// fast path: sequential routing to each read's first non-stale replica,
// then per-node batch reads through the parallel read path (plan, decode
// fan-out, commit). The report is bit-identical to any other scheduling of
// the same batch.
func (c *Cluster) ReadBatch(lbas []int64, opts ClusterReadBatchOptions) (*ClusterReadBatchReport, error) {
	return c.inner.ReadBatch(lbas, opts)
}

// Close releases every node's decode worker pool. Idempotent; the cluster
// stays usable and a later ReadBatch recreates the pools.
func (c *Cluster) Close() { c.inner.Close() }

// StreamSpec describes a synthetic workload stream (the vdbench stand-in):
// both knobs the paper's evaluation uses, calibrated against this
// repository's actual LZSS encoder.
type StreamSpec struct {
	TotalBytes       int64   // stream length (whole chunks)
	ChunkSize        int     // 0 means 4 KB
	DedupRatio       float64 // total/unique bytes; 0 means 1.0 (all unique)
	CompressionRatio float64 // LZSS ratio per unique chunk; 0 means 1.0
	TemporalLocality bool    // bias duplicate references toward recent chunks
	Seed             int64
}

// Stream is a deterministic synthetic workload (io.Reader).
type Stream = workload.Stream

// NewStream builds a calibrated workload stream.
func NewStream(spec StreamSpec) (*Stream, error) {
	ws := workload.Spec{
		TotalBytes: spec.TotalBytes,
		ChunkSize:  spec.ChunkSize,
		DedupRatio: spec.DedupRatio,
		CompRatio:  spec.CompressionRatio,
		Seed:       spec.Seed,
	}
	if ws.ChunkSize == 0 {
		ws.ChunkSize = 4096
	}
	if ws.DedupRatio == 0 {
		ws.DedupRatio = 1.0
	}
	if ws.CompRatio == 0 {
		ws.CompRatio = 1.0
	}
	if spec.TemporalLocality {
		ws.Pattern = workload.RefRecent
	}
	return workload.New(ws)
}
